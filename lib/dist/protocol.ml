module Json = Repro_serve.Json
module Prng = Repro_util.Prng
module V = Repro_spice.Vco_measure

(* ---- PRNG stream wire codec -------------------------------------- *)

let stream_to_hex s =
  Prng.to_bits s
  |> Array.map (Printf.sprintf "%016Lx")
  |> Array.to_list |> String.concat ":"

let stream_of_hex str =
  let fields = String.split_on_char ':' str in
  match
    List.map
      (fun f ->
        if String.length f <> 16 then failwith "bad word"
        else Int64.of_string ("0x" ^ f))
      fields
  with
  | words -> (
    match Prng.of_bits (Array.of_list words) with
    | Some s -> Ok s
    | None -> Error "invalid PRNG state")
  | exception Failure _ -> Error "malformed PRNG stream"

(* ---- JSON helpers ------------------------------------------------- *)

(* Finite floats ride as JSON numbers (lossless decimal); non-finite
   values — infeasible evaluations carry [infinity] objectives — have
   no JSON number representation, so they ride as the strings
   [float_of_string] accepts ("inf", "-inf", "nan"). *)
let float_to_json x =
  if Float.is_finite x then Json.Num x
  else if x = Float.infinity then Json.Str "inf"
  else if x = Float.neg_infinity then Json.Str "-inf"
  else Json.Str "nan"

let float_of_json = function
  | Json.Num x -> x
  | Json.Str s -> (
    match float_of_string_opt s with
    | Some x when not (Float.is_finite x) -> x
    | _ -> failwith "not a number")
  | _ -> failwith "not a number"

let floats_to_json a =
  Json.Arr (Array.to_list (Array.map float_to_json a))

let floats_of_json ~what = function
  | Json.Arr items -> (
    match List.map float_of_json items with
    | xs -> Ok (Array.of_list xs)
    | exception Failure _ -> Error (what ^ ": expected an array of numbers"))
  | _ -> Error (what ^ ": expected an array")

let rows_to_json rows =
  Json.Arr (Array.to_list (Array.map floats_to_json rows))

let rows_of_json ~what = function
  | Json.Arr items -> (
    match
      List.map
        (fun item ->
          match floats_of_json ~what item with
          | Ok row -> row
          | Error msg -> failwith msg)
        items
    with
    | rows -> Ok (Array.of_list rows)
    | exception Failure msg -> Error msg)
  | _ -> Error (what ^ ": expected an array of arrays")

(* ---- model fingerprint -------------------------------------------- *)

let model_fingerprint model =
  Printf.sprintf "%08x"
    (Hashtbl.hash_param 1000 1000 (Hieropt.Perf_table.entries model))

(* ---- eval request/response ---------------------------------------- *)

type eval_request = {
  problem : string;
  salt : string;
  model_hash : string option;
  points : float array array;
}

let eval_request_to_json r =
  Json.Obj
    ([ ("problem", Json.Str r.problem); ("salt", Json.Str r.salt) ]
    @ (match r.model_hash with
      | Some h -> [ ("model_hash", Json.Str h) ]
      | None -> [])
    @ [ ("points", rows_to_json r.points) ])

let eval_request_of_json j =
  match
    ( Json.get_string "problem" j,
      Json.get_string "salt" j,
      Json.get_field "points" j )
  with
  | Ok problem, Ok salt, Ok points_j -> (
    match rows_of_json ~what:"points" points_j with
    | Ok points ->
      let model_hash =
        match Json.member "model_hash" j with
        | Some (Json.Str h) -> Some h
        | _ -> None
      in
      Ok { problem; salt; model_hash; points }
    | Error _ as e -> e)
  | Error msg, _, _ | _, Error msg, _ | _, _, Error msg -> Error msg

(* ---- Monte-Carlo request ------------------------------------------ *)

type mc_request = {
  mc_salt : string;
  params : float array;  (** 7-float vco_params vector *)
  streams : Prng.t array;
}

let mc_request_to_json r =
  Json.Obj
    [
      ("problem", Json.Str "mc");
      ("salt", Json.Str r.mc_salt);
      ("params", floats_to_json r.params);
      ( "streams",
        Json.Arr
          (Array.to_list
             (Array.map (fun s -> Json.Str (stream_to_hex s)) r.streams)) );
    ]

let mc_request_of_json j =
  match
    ( Json.get_string "salt" j,
      Json.get_field "params" j,
      Json.get_list "streams" j )
  with
  | Ok mc_salt, Ok params_j, Ok streams_j -> (
    match floats_of_json ~what:"params" params_j with
    | Error _ as e -> e
    | Ok params -> (
      match
        List.map
          (function
            | Json.Str hex -> (
              match stream_of_hex hex with
              | Ok s -> s
              | Error msg -> failwith msg)
            | _ -> failwith "streams: expected hex strings")
          streams_j
      with
      | streams -> Ok { mc_salt; params; streams = Array.of_list streams }
      | exception Failure msg -> Error msg))
  | Error msg, _, _ | _, Error msg, _ | _, _, Error msg -> Error msg

(* ---- trace propagation envelope ----------------------------------- *)

(* Optional profiling side-channel on eval/MC exchanges: the
   coordinator stamps requests with its trace id, the span the work
   belongs to, and a wall-clock send time; the worker echoes its own
   span id plus wall-clock receive/reply times.  The four stamps give
   an NTP-style clock-offset estimate per round trip, and the ids let
   [trace merge] nest worker spans under their coordinator parents.
   The envelope is additive JSON — untraced peers ignore it — and
   never influences evaluation, preserving bit-identical results. *)

type trace_ctx = { trace : string; parent : int; t_sent : float }
type trace_echo = { span : int; t_recv : float; t_replied : float }

let add_field name v = function
  | Json.Obj fields -> Json.Obj (fields @ [ (name, v) ])
  | j -> j

let with_trace_ctx ctx j =
  match ctx with
  | None -> j
  | Some c ->
    add_field "trace"
      (Json.Obj
         [
           ("id", Json.Str c.trace);
           ("parent", Json.Num (float_of_int c.parent));
           ("t_sent", Json.Num c.t_sent);
         ])
      j

let trace_ctx_of_json j =
  match Json.member "trace" j with
  | Some t -> (
    match
      (Json.get_string "id" t, Json.member "parent" t, Json.member "t_sent" t)
    with
    | Ok trace, Some (Json.Num p), Some (Json.Num ts) ->
      Some { trace; parent = int_of_float p; t_sent = ts }
    | _ -> None)
  | None -> None

let with_trace_echo echo j =
  match echo with
  | None -> j
  | Some e ->
    add_field "trace"
      (Json.Obj
         [
           ("span", Json.Num (float_of_int e.span));
           ("t_recv", Json.Num e.t_recv);
           ("t_replied", Json.Num e.t_replied);
         ])
      j

let trace_echo_of_json j =
  match Json.member "trace" j with
  | Some t -> (
    match
      ( Json.member "span" t,
        Json.member "t_recv" t,
        Json.member "t_replied" t )
    with
    | Some (Json.Num s), Some (Json.Num r), Some (Json.Num p) ->
      Some { span = int_of_float s; t_recv = r; t_replied = p }
    | _ -> None)
  | None -> None

(* ---- responses ---------------------------------------------------- *)

let results_to_json rows = Json.Obj [ ("results", rows_to_json rows) ]

let results_of_json j =
  match Json.get_field "results" j with
  | Error _ as e -> e
  | Ok rows_j -> rows_of_json ~what:"results" rows_j

(* MC outcome rows reuse the Monte-Carlo checkpoint convention:
   [| 1.0; kvco; ivco; jvco; fmin; fmax |] for a successful trial,
   [| 0.0 |] for a failed one.  Failure messages never cross the wire —
   only success payloads and failure counts feed the statistics, so a
   placeholder keeps remote runs bit-identical to local ones. *)
let perf_row_of_outcome = function
  | Ok (p : V.performance) ->
    [| 1.0; p.V.kvco; p.V.ivco; p.V.jvco; p.V.fmin; p.V.fmax |]
  | Error _ -> [| 0.0 |]

let outcome_of_perf_row row =
  if Array.length row = 6 && row.(0) = 1.0 then
    Ok
      {
        V.kvco = row.(1);
        ivco = row.(2);
        jvco = row.(3);
        fmin = row.(4);
        fmax = row.(5);
      }
  else if Array.length row = 1 && row.(0) = 0.0 then
    Error "failed trial (remote)"
  else failwith "Protocol: malformed Monte-Carlo outcome row"
