let flag name =
  match Sys.getenv_opt name with
  | Some v when v <> "" && v <> "0" -> true
  | Some _ | None -> false

let int_var name =
  match Sys.getenv_opt name with
  | None | Some "" -> None
  | Some v -> int_of_string_opt (String.trim v)

let full () = flag "HIEROPT_FULL"

let jobs_override = ref None
let set_jobs n = jobs_override := if n <= 0 then None else Some n

let jobs () =
  match !jobs_override with
  | Some n -> n
  | None -> (
    match int_var "HIEROPT_JOBS" with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
