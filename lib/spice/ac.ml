module Matrix = Repro_linalg.Matrix
module Vec = Repro_linalg.Vec
module Lu = Repro_linalg.Lu
module Sparse = Repro_linalg.Sparse
module Sparse_lu = Repro_linalg.Sparse_lu
module Config = Repro_engine.Config
module Telemetry = Repro_engine.Telemetry
module Histogram = Repro_obs.Histogram

(* sparse backing for the real-embedded 2n x 2n system: the structure
   is fixed across the whole sweep (only the frequency scales the C
   stamps), so the symbolic analysis runs once and every frequency
   point is a numeric refactorisation.  [gp]/[cp_*] are value-slot
   lists with their frequency-independent coefficients. *)
type sp = {
  a : Sparse.t;
  gp : int array;
  gv : float array;
  cp_hi : int array; (* (i, n+j) slots: value -w * cij *)
  cp_lo : int array; (* (n+i, j) slots: value +w * cij *)
  cv : float array;
  mutable num : Sparse_lu.numeric option;
}

type t = {
  compiled : Mna.compiled;
  g : Matrix.t; (* small-signal conductances (Newton Jacobian at the op) *)
  c : Matrix.t; (* capacitance stamps *)
  mutable sp : sp option; (* lazily built; single-threaded use per [t] *)
}

let linearise compiled (op : Dcop.result) =
  let n = Mna.size compiled in
  let g = Matrix.create n n in
  let residual = Vec.create n in
  Mna.assemble compiled ~x:op.Dcop.solution ~time:0.0 ~gmin:1e-12
    ~source_scale:1.0 ~cap_mode:Mna.Dc ~jacobian:g ~residual;
  let c = Matrix.create n n in
  Array.iter
    (fun (a, b, cval) ->
      if a >= 0 then Matrix.add_to c a a cval;
      if b >= 0 then Matrix.add_to c b b cval;
      if a >= 0 && b >= 0 then begin
        Matrix.add_to c a b (-.cval);
        Matrix.add_to c b a (-.cval)
      end)
    (Mna.capacitance_stamps compiled);
  { compiled; g; c; sp = None }

(* (G + jwC) x = b embedded as the real system
   [ G  -wC ] [re]   [b]
   [ wC   G ] [im] = [0] *)

let solve_at_dense t ~b w =
  let n = Mna.size t.compiled in
  let big = Matrix.create (2 * n) (2 * n) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let gij = Matrix.get t.g i j and cij = Matrix.get t.c i j in
      Matrix.set big i j gij;
      Matrix.set big (n + i) (n + j) gij;
      if cij <> 0.0 then begin
        Matrix.set big i (n + j) (-.w *. cij);
        Matrix.set big (n + i) j (w *. cij)
      end
    done
  done;
  let rhs = Array.append b (Array.make n 0.0) in
  let x = Lu.solve big rhs in
  (Array.sub x 0 n, Array.sub x n n)

(* G and C are fixed for the lifetime of [t] and w only scales the C
   stamps, so a value-based pattern is exact for every frequency *)
let build_sp t =
  let n = Mna.size t.compiled in
  let builder = Sparse.Builder.create ~n:(2 * n) in
  let gs = ref [] and cs = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let gij = Matrix.get t.g i j and cij = Matrix.get t.c i j in
      if gij <> 0.0 then begin
        Sparse.Builder.add builder i j 0.0;
        Sparse.Builder.add builder (n + i) (n + j) 0.0;
        gs := (i, j, gij) :: !gs
      end;
      if cij <> 0.0 then begin
        Sparse.Builder.add builder i (n + j) 0.0;
        Sparse.Builder.add builder (n + i) j 0.0;
        cs := (i, j, cij) :: !cs
      end
    done
  done;
  let a = Sparse.Builder.build builder in
  let gs = Array.of_list !gs and cs = Array.of_list !cs in
  let gp = Array.make (2 * Array.length gs) 0 in
  let gv = Array.make (2 * Array.length gs) 0.0 in
  Array.iteri
    (fun k (i, j, v) ->
      gp.(2 * k) <- Sparse.index a i j;
      gp.((2 * k) + 1) <- Sparse.index a (n + i) (n + j);
      gv.(2 * k) <- v;
      gv.((2 * k) + 1) <- v)
    gs;
  let cp_hi = Array.make (Array.length cs) 0 in
  let cp_lo = Array.make (Array.length cs) 0 in
  let cv = Array.make (Array.length cs) 0.0 in
  Array.iteri
    (fun k (i, j, v) ->
      cp_hi.(k) <- Sparse.index a i (n + j);
      cp_lo.(k) <- Sparse.index a (n + i) j;
      cv.(k) <- v)
    cs;
  { a; gp; gv; cp_hi; cp_lo; cv; num = None }

let solve_at_sparse t ~b w =
  let n = Mna.size t.compiled in
  let sp =
    match t.sp with
    | Some sp -> sp
    | None ->
      let sp = build_sp t in
      t.sp <- Some sp;
      sp
  in
  let v = Sparse.values sp.a in
  Array.fill v 0 (Array.length v) 0.0;
  Array.iteri (fun k p -> v.(p) <- v.(p) +. sp.gv.(k)) sp.gp;
  Array.iteri (fun k p -> v.(p) <- v.(p) -. (w *. sp.cv.(k))) sp.cp_hi;
  Array.iteri (fun k p -> v.(p) <- v.(p) +. (w *. sp.cv.(k))) sp.cp_lo;
  let full () =
    let sym, nm =
      Histogram.time (Histogram.get "solver.factorise") (fun () ->
          Sparse_lu.factorise sp.a)
    in
    Telemetry.incr "solver.symbolic";
    Sparse_lu.store_symbolic sp.a sym;
    sp.num <- Some nm;
    nm
  in
  let nm =
    match sp.num with
    | None -> (
      match Sparse_lu.find_symbolic sp.a with
      | None -> full ()
      | Some sym -> (
        let nm = Sparse_lu.create_numeric sym in
        match
          Histogram.time (Histogram.get "solver.refactorise") (fun () ->
              Sparse_lu.refactorise nm sp.a)
        with
        | () ->
          Telemetry.incr "solver.refactorise";
          sp.num <- Some nm;
          nm
        | exception Sparse_lu.Singular _ -> full ()))
    | Some nm -> (
      match
        Histogram.time (Histogram.get "solver.refactorise") (fun () ->
            Sparse_lu.refactorise nm sp.a)
      with
      | () ->
        Telemetry.incr "solver.refactorise";
        nm
      | exception Sparse_lu.Singular _ -> full ())
  in
  let rhs = Array.append b (Array.make n 0.0) in
  let x = Sparse_lu.solve nm rhs in
  (Array.sub x 0 n, Array.sub x n n)

let solve_at ?solver t ~b w =
  let mode = match solver with Some m -> m | None -> Config.solver () in
  let use_sparse =
    match mode with
    | Config.Dense -> false
    | Config.Sparse -> true
    | Config.Auto -> 2 * Mna.size t.compiled >= 8
  in
  if use_sparse then solve_at_sparse t ~b w else solve_at_dense t ~b w

let transfer ?solver t ~input ~output f =
  let n = Mna.size t.compiled in
  let bi = Mna.branch_index t.compiled input in
  let b = Array.make n 0.0 in
  b.(bi) <- 1.0;
  let w = 2.0 *. Float.pi *. f in
  let re, im = solve_at ?solver t ~b w in
  match Mna.node_index t.compiled (Mna.node_of_name t.compiled output) with
  | None -> Complex.zero
  | Some k -> { Complex.re = re.(k); im = im.(k) }

type sweep_point = {
  freq : float;
  gain : Complex.t;
  magnitude_db : float;
  phase_deg : float;
}

let point_of ?solver t ~input ~output freq =
  let gain = transfer ?solver t ~input ~output freq in
  {
    freq;
    gain;
    magnitude_db = 20.0 *. log10 (Float.max (Complex.norm gain) 1e-30);
    phase_deg = Complex.arg gain *. 180.0 /. Float.pi;
  }

let sweep ?solver t ~input ~output ~freqs =
  Array.map (point_of ?solver t ~input ~output) freqs

let logsweep ?solver t ~input ~output ~f_start ~f_stop ~points =
  sweep ?solver t ~input ~output
    ~freqs:(Repro_util.Floatx.logspace f_start f_stop points)

type bode_summary = {
  dc_gain_db : float;
  unity_gain_freq : float option;
  phase_margin_deg : float option;
  bandwidth_3db : float option;
}

(* continuous phase for margin extraction: unwrap multiples of 360 *)
let unwrap phases =
  let out = Array.copy phases in
  for i = 1 to Array.length out - 1 do
    let d = out.(i) -. out.(i - 1) in
    if d > 180.0 then out.(i) <- out.(i) -. 360.0
    else if d < -180.0 then out.(i) <- out.(i) +. 360.0
  done;
  out

let interp_log_crossing points get_y target =
  (* first downward crossing of target, log-interpolated in frequency *)
  let n = Array.length points in
  let rec find i =
    if i >= n - 1 then None
    else begin
      let a = get_y points.(i) and b = get_y points.(i + 1) in
      if a >= target && b < target then begin
        let t = (a -. target) /. (a -. b) in
        Some
          (exp
             (Repro_util.Floatx.lerp
                (log points.(i).freq)
                (log points.(i + 1).freq)
                t))
      end
      else find (i + 1)
    end
  in
  find 0

let bode_summary points =
  if Array.length points = 0 then invalid_arg "Ac.bode_summary: empty sweep";
  let dc_gain_db = points.(0).magnitude_db in
  let unity_gain_freq = interp_log_crossing points (fun p -> p.magnitude_db) 0.0 in
  let bandwidth_3db =
    interp_log_crossing points (fun p -> p.magnitude_db) (dc_gain_db -. 3.0)
  in
  let phase_margin_deg =
    match unity_gain_freq with
    | None -> None
    | Some fu ->
      let phases = unwrap (Array.map (fun p -> p.phase_deg) points) in
      (* linear interpolation of the unwrapped phase at fu; reference the
         phase to the low-frequency value so an inverting amplifier's
         180 degrees of DC inversion does not count against the margin *)
      let n = Array.length points in
      let rec at i =
        if i >= n - 1 then phases.(n - 1)
        else if points.(i + 1).freq >= fu then begin
          let t =
            (log fu -. log points.(i).freq)
            /. (log points.(i + 1).freq -. log points.(i).freq)
          in
          Repro_util.Floatx.lerp phases.(i) phases.(i + 1) t
        end
        else at (i + 1)
      in
      let phase_at_unity = at 0 -. phases.(0) in
      Some (180.0 +. phase_at_unity)
  in
  { dc_gain_db; unity_gain_freq; phase_margin_deg; bandwidth_3db }
