let latin_hypercube prng ~dims ~samples =
  if dims <= 0 || samples <= 0 then
    invalid_arg "Sampling.latin_hypercube: sizes must be positive";
  let out = Array.make_matrix samples dims 0.0 in
  for d = 0 to dims - 1 do
    let perm = Array.init samples Fun.id in
    Prng.shuffle prng perm;
    for s = 0 to samples - 1 do
      let jitter = Prng.uniform prng in
      out.(s).(d) <- (float_of_int perm.(s) +. jitter) /. float_of_int samples
    done
  done;
  out

let scale_to_box bounds points =
  Array.map
    (fun p ->
      if Array.length p <> Array.length bounds then
        invalid_arg "Sampling.scale_to_box: dimension mismatch";
      Array.mapi
        (fun d u ->
          let lo, hi = bounds.(d) in
          Floatx.lerp lo hi u)
        p)
    points

(* Acklam's inverse normal CDF approximation *)
let normal_inverse_cdf p =
  if p <= 0.0 || p >= 1.0 then
    invalid_arg "Sampling.normal_inverse_cdf: p outside (0,1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  if p < p_low then begin
    let q = sqrt (-2.0 *. log p) in
    (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
    *. q +. c.(5)
    |> fun num ->
    num
    /. ((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3) |> fun den ->
        (den *. q) +. 1.0)
  end
  else if p <= 1.0 -. p_low then begin
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
    *. r +. a.(5)
    |> fun num ->
    num *. q
    /. (((((b.(0) *. r) +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)
        |> fun den -> (den *. r) +. 1.0)
  end
  else begin
    let q = sqrt (-2.0 *. log (1.0 -. p)) in
    -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
       *. q +. c.(5))
    /. ((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3) |> fun den ->
        (den *. q) +. 1.0)
  end

let gaussian_lhs prng ~dims ~samples =
  let unit = latin_hypercube prng ~dims ~samples in
  Array.map (Array.map normal_inverse_cdf) unit
