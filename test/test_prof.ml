(* repro_prof: span reconstruction, self-time / GC / utilization
   analyses, the Prometheus rendering, and the multi-process trace
   merge — including QCheck properties over synthetic span forests. *)

module Ev = Repro_prof.Event
module A = Repro_prof.Analysis
module M = Repro_prof.Merge

(* ---- synthetic traces -------------------------------------------- *)

(* nested span specs: name, per-span self allocation (minor words),
   children.  The builder assigns every begin/end its own timestamp
   tick, so all spans have positive duration and a total order. *)
type spec = S of string * float * spec list

let rec spec_total_gc (S (_, self, kids)) =
  List.fold_left (fun acc k -> acc +. spec_total_gc k) self kids

(* events in emission order; gc.minor_w on each end event is self +
   children, exactly like Gc.quick_stat deltas around the span body *)
let build ?(pid = 1) ?(tid = 0) ?(seq0 = 0) ?(t0 = 0.0) specs =
  let seq = ref seq0 in
  let ts = ref t0 in
  let events = ref [] in
  let tick () =
    let t = !ts in
    ts := t +. 1.0;
    t
  in
  let next () =
    let s = !seq in
    incr seq;
    s
  in
  let push e = events := e :: !events in
  let rec walk (S (name, _, kids) as sp) =
    push { Ev.name; ph = 'B'; ts = tick (); pid; tid; seq = next (); args = [] };
    List.iter walk kids;
    push
      {
        Ev.name;
        ph = 'E';
        ts = tick ();
        pid;
        tid;
        seq = next ();
        args = [ ("gc.minor_w", Printf.sprintf "%.0f" (spec_total_gc sp)) ];
      }
  in
  List.iter walk specs;
  List.rev !events

(* forest shape as (name, depth) preorder — the invariant merge must
   preserve *)
let shape roots =
  List.map (fun (s : Ev.span) -> (s.Ev.name, s.Ev.depth)) (Ev.flatten roots)

let spec_gen =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           let name = map (fun i -> "s" ^ string_of_int i) (int_range 0 5) in
           let alloc = map float_of_int (int_range 0 1000) in
           if n <= 0 then map2 (fun nm a -> S (nm, a, [])) name alloc
           else
             map3
               (fun nm a kids -> S (nm, a, kids))
               name alloc
               (list_size (int_range 0 3) (self (n / 2)))))

let forest_gen = QCheck.Gen.(list_size (int_range 1 4) spec_gen)

let forest_arb =
  QCheck.make forest_gen
    ~print:(fun specs ->
      let rec pp (S (n, a, kids)) =
        Printf.sprintf "%s(%.0f)[%s]" n a (String.concat ";" (List.map pp kids))
      in
      String.concat " " (List.map pp specs))

(* ---- reconstruction + analysis unit tests ------------------------- *)

let test_span_reconstruction () =
  let events =
    build [ S ("a", 10.0, [ S ("b", 5.0, []); S ("c", 0.0, []) ]) ]
  in
  Alcotest.(check int) "balanced" 0 (Ev.unbalanced events);
  match Ev.spans events with
  | [ a ] ->
    Alcotest.(check string) "root name" "a" a.Ev.name;
    Alcotest.(check (list string))
      "children chronological" [ "b"; "c" ]
      (List.map (fun s -> s.Ev.name) a.Ev.children);
    Alcotest.(check int) "root id is the begin seq" 0 a.Ev.id;
    (* a's end-event gc is self + children: 10 + 5 + 0 *)
    Alcotest.(check (float 1e-9)) "gc total" 15.0 (Ev.gc_field a "gc.minor_w")
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_unbalanced_detects_stray () =
  let events = build [ S ("a", 0.0, []) ] in
  let stray =
    { Ev.name = "x"; ph = 'E'; ts = 99.0; pid = 1; tid = 0; seq = 99; args = [] }
  in
  Alcotest.(check int) "one stray end" 1 (Ev.unbalanced (events @ [ stray ]));
  let open_b =
    { Ev.name = "y"; ph = 'B'; ts = 98.0; pid = 1; tid = 7; seq = 98; args = [] }
  in
  Alcotest.(check int) "one open begin" 1 (Ev.unbalanced (events @ [ open_b ]))

let test_utilization_window () =
  (* tid 0: busy (pool.chunk) from t=1..2 inside a root of 0..3;
     tid 1: never busy *)
  let events =
    build ~tid:0 [ S ("run", 0.0, [ S ("pool.chunk", 0.0, []) ]) ]
    @ build ~tid:1 ~seq0:100 ~t0:0.0 [ S ("other", 0.0, []) ]
  in
  let roots = Ev.spans events in
  let util = A.utilization roots ~t0:0.0 ~t1:4.0 in
  Alcotest.(check int) "two domains" 2 (List.length util);
  let f0 = List.assoc (1, 0) util and f1 = List.assoc (1, 1) util in
  Alcotest.(check (float 1e-9)) "tid0 busy 1/4" 0.25 f0;
  Alcotest.(check (float 1e-9)) "tid1 idle" 0.0 f1

let test_folded_output () =
  let events = build [ S ("run", 0.0, [ S ("work", 0.0, []) ]) ] in
  let roots = Ev.spans events in
  let out = A.folded ~labels:[ (1, "coord") ] roots in
  let lines = String.split_on_char '\n' (String.trim out) in
  (* run: t0=0 t1=3, child 1..2 → self 2; work: self 1 *)
  Alcotest.(check (list string))
    "folded lines"
    [ "coord/t0;run 2"; "coord/t0;run;work 1" ]
    lines

(* ---- QCheck: attribution properties ------------------------------- *)

(* self-times telescope: over any forest they sum exactly to the roots'
   total duration — the property behind "report --profile attributes
   ~100% of wall time" *)
let prop_self_time_telescopes =
  QCheck.Test.make ~name:"self-times sum to root durations" ~count:200
    forest_arb (fun specs ->
      let roots = Ev.spans (build specs) in
      let rows = A.self_time roots in
      let wall =
        List.fold_left (fun acc s -> acc +. Ev.dur s) 0.0 roots
      in
      Float.abs (A.total_self rows -. wall) < 1e-6 *. Float.max 1.0 wall)

(* GC deltas: a span's self allocation never exceeds its total, and the
   per-name selfs conserve the forest's total allocation *)
let prop_gc_attribution =
  QCheck.Test.make ~name:"gc self + children <= total, selfs conserve"
    ~count:200 forest_arb (fun specs ->
      let roots = Ev.spans (build specs) in
      let rows = A.self_time roots in
      let per_span_ok =
        List.for_all
          (fun (s : Ev.span) ->
            let total = Ev.gc_field s "gc.minor_w" in
            let children =
              List.fold_left
                (fun acc c -> acc +. Ev.gc_field c "gc.minor_w")
                0.0 s.Ev.children
            in
            children <= total +. 1e-9)
          (Ev.flatten roots)
      in
      let forest_total =
        List.fold_left (fun acc sp -> acc +. spec_total_gc sp) 0.0 specs
      in
      let selfs =
        List.fold_left (fun acc (r : A.row) -> acc +. r.A.gc_minor_self) 0.0 rows
      in
      let row_ok =
        List.for_all
          (fun (r : A.row) ->
            r.A.gc_minor_self <= r.A.gc_minor_total +. 1e-9)
          rows
      in
      per_span_ok && row_ok && Float.abs (selfs -. forest_total) < 1e-6)

(* ---- QCheck: merge properties ------------------------------------- *)

let mk_clock_instant ~seq ~endpoint ~delta =
  {
    Ev.name = "dist.clock";
    ph = 'i';
    ts = 0.5;
    pid = 1;
    tid = 0;
    seq;
    args = [ ("endpoint", endpoint); ("delta_s", Printf.sprintf "%.9f" delta) ];
  }

let merge_case_gen =
  QCheck.Gen.(
    let shift = map (fun i -> float_of_int i /. 1000.0) (int_range (-5000) 5000) in
    let delta = map (fun i -> float_of_int i /. 100000.0) (int_range (-100) 100) in
    map3 (fun c w (s, d) -> (c, w, s, d)) forest_gen forest_gen (pair shift delta))

let merge_arb = QCheck.make merge_case_gen

let base_of events =
  { M.label = Some "coordinator"; pid = 1; epoch = 1000.0; trace = "t1"; events }

let prop_merge_preserves_nesting =
  QCheck.Test.make ~name:"merge preserves each process's span forest"
    ~count:200 merge_arb (fun (cspec, wspec, shift, delta) ->
      let cevents =
        build ~pid:1 cspec
        @ [ mk_clock_instant ~seq:10_000 ~endpoint:"127.0.0.1:9401" ~delta ]
      in
      let wevents = build ~pid:77 wspec in
      let base = base_of cevents in
      let worker =
        {
          M.label = Some "worker:9401";
          pid = 77;
          epoch = 1000.0 +. shift;
          trace = "t1";
          events = wevents;
        }
      in
      let merged, labels = M.merge ~base ~workers:[ worker ] in
      let by_pid p =
        List.filter (fun (e : Ev.t) -> e.Ev.pid = p) merged
      in
      (* worker gets the deterministic fresh pid, labels carry both *)
      List.mem (1, "coordinator") labels
      && List.mem (2, "worker:9401") labels
      && shape (Ev.spans (by_pid 1)) = shape (Ev.spans cevents)
      && shape (Ev.spans (by_pid 2)) = shape (Ev.spans wevents))

let prop_merge_clock_monotone =
  QCheck.Test.make ~name:"merged worker clock is a uniform monotone shift"
    ~count:200 merge_arb (fun (cspec, wspec, shift, delta) ->
      let cevents =
        build ~pid:1 cspec
        @ [ mk_clock_instant ~seq:10_000 ~endpoint:"127.0.0.1:9401" ~delta ]
      in
      let wevents = build ~pid:77 wspec in
      let base = base_of cevents in
      let worker =
        {
          M.label = Some "worker:9401";
          pid = 77;
          epoch = 1000.0 +. shift;
          trace = "t1";
          events = wevents;
        }
      in
      let merged, _ = M.merge ~base ~workers:[ worker ] in
      let shifted =
        List.filter (fun (e : Ev.t) -> e.Ev.pid = 2) merged
        |> List.sort (fun (a : Ev.t) b -> compare a.Ev.seq b.Ev.seq)
      in
      let expected = (shift -. delta) *. 1e6 in
      (* exact shift per event... *)
      let shift_ok =
        List.for_all2
          (fun (w : Ev.t) (m : Ev.t) ->
            Float.abs (m.Ev.ts -. w.Ev.ts -. expected)
            < 1e-6 *. Float.max 1.0 (Float.abs expected))
          wevents shifted
      in
      (* ...hence strictly increasing timestamps survive the merge *)
      let rec monotone = function
        | (a : Ev.t) :: (b : Ev.t) :: rest ->
          a.Ev.ts < b.Ev.ts && monotone (b :: rest)
        | _ -> true
      in
      shift_ok && monotone shifted)

let prop_merge_validate_no_orphans =
  QCheck.Test.make
    ~name:"propagated parents resolve after merge (validate = [])"
    ~count:100 forest_arb (fun wspec ->
      (* coordinator: one wide dispatch span [0, 10^7 us]; worker spans
         inside it, tagged with the dispatch span's id as parent *)
      let dispatch_b =
        { Ev.name = "dist.dispatch"; ph = 'B'; ts = 0.0; pid = 1; tid = 0;
          seq = 0; args = [] }
      in
      let dispatch_e = { dispatch_b with ph = 'E'; ts = 1e7; seq = 1 } in
      let cevents = [ dispatch_b; dispatch_e ] in
      let tag_parent (e : Ev.t) =
        if e.Ev.ph = 'B' then
          { e with Ev.args = ("parent", "0") :: e.Ev.args }
        else e
      in
      let wevents =
        List.map tag_parent (build ~pid:77 ~t0:100.0 wspec)
      in
      let base = base_of cevents in
      let worker =
        { M.label = Some "worker:9401"; pid = 77; epoch = 1000.0;
          trace = "t1"; events = wevents }
      in
      let merged, _ = M.merge ~base ~workers:[ worker ] in
      M.validate ~coordinator_pid:1 merged = []
      (* and a parent id nobody emitted is caught *)
      &&
      let bogus =
        List.map
          (fun (e : Ev.t) ->
            if e.Ev.ph = 'B' && Ev.arg "parent" e.Ev.args <> None then
              { e with Ev.args = [ ("parent", "424242") ] }
            else e)
          merged
      in
      M.validate ~coordinator_pid:1 bogus <> [])

let test_validate_containment () =
  (* a remote span that starts long before its parent must be flagged *)
  let parent_b =
    { Ev.name = "dist.dispatch"; ph = 'B'; ts = 1e6; pid = 1; tid = 0;
      seq = 0; args = [] }
  in
  let parent_e = { parent_b with ph = 'E'; ts = 2e6; seq = 1 } in
  let child_b =
    { Ev.name = "dist.work"; ph = 'B'; ts = 0.0; pid = 2; tid = 0; seq = 2;
      args = [ ("parent", "0") ] }
  in
  let child_e = { child_b with ph = 'E'; ts = 10.0; seq = 3; args = [] } in
  let errors =
    M.validate ~coordinator_pid:1 [ parent_b; parent_e; child_b; child_e ]
  in
  Alcotest.(check bool) "escape reported" true (errors <> [])

let test_endpoint_offsets_median () =
  let inst seq delta =
    mk_clock_instant ~seq ~endpoint:"10.0.0.2:9000" ~delta
  in
  let events = [ inst 0 0.010; inst 1 0.030; inst 2 0.020 ] in
  (match M.endpoint_offsets events with
  | [ ("10.0.0.2:9000", d) ] ->
    Alcotest.(check (float 1e-12)) "median of 3" 0.020 d
  | other -> Alcotest.failf "unexpected offsets (%d)" (List.length other));
  (* NTP-style estimate from one envelope: remote leads by 5 ms with a
     symmetric 1 ms one-way delay *)
  let d =
    M.offset ~t_send:0.0 ~t_recv:0.006 ~t_reply_sent:0.010 ~t_reply_recv:0.006
  in
  Alcotest.(check (float 1e-12)) "offset" 0.005 d

(* ---- tracer round trip: live spans → export → analysis ------------ *)

let test_live_gc_capture_roundtrip () =
  let module Trace = Repro_obs.Trace in
  Trace.start ~gc:true ();
  let r =
    Trace.span "outer" @@ fun () ->
    (* thousands of small boxed values: guaranteed minor-heap traffic
       (one big array would go straight to the major heap) *)
    let x =
      Trace.span "alloc" (fun () ->
          List.init 2_000 (fun i -> (float_of_int i, i)))
    in
    List.length x
  in
  Trace.stop ();
  Alcotest.(check int) "body ran" 2_000 r;
  let events =
    List.map
      (fun (e : Trace.event) ->
        {
          Ev.name = e.Trace.name;
          ph = e.Trace.ph;
          ts = e.Trace.ts;
          pid = 1;
          tid = e.Trace.tid;
          seq = e.Trace.seq;
          args = e.Trace.args;
        })
      (Trace.events ())
  in
  let roots = Ev.spans events in
  match A.find_span (String.equal "alloc") roots with
  | None -> Alcotest.fail "alloc span missing"
  | Some s ->
    Alcotest.(check bool)
      "allocation attributed" true
      (Ev.gc_field s "gc.minor_w" >= 2_000.0);
    (match A.find_span (String.equal "outer") roots with
    | None -> Alcotest.fail "outer span missing"
    | Some outer ->
      Alcotest.(check bool)
        "child gc <= parent gc" true
        (Ev.gc_field s "gc.minor_w"
        <= Ev.gc_field outer "gc.minor_w" +. 1e-9))

(* ---- Prometheus rendering ----------------------------------------- *)

let test_prom_matches_snapshot () =
  let module T = Repro_engine.Telemetry in
  T.incr "proftest.requests" ~by:3;
  T.set "proftest.gauge" 7;
  T.add_time "proftest.elapsed" 0.25;
  let h = Repro_obs.Histogram.get "proftest.latency" in
  Repro_obs.Histogram.observe h 0.5;
  let prom = Repro_prof.Prom.render () in
  let contains line =
    List.exists (String.equal line) (String.split_on_char '\n' prom)
  in
  Alcotest.(check bool)
    "counter rendered" true
    (contains "hieropt_proftest_requests 3");
  Alcotest.(check bool)
    "set counter rendered" true
    (contains "hieropt_proftest_gauge 7");
  Alcotest.(check bool)
    "timer rendered" true
    (contains "hieropt_proftest_elapsed_seconds 0.25");
  Alcotest.(check bool)
    "histogram sum rendered" true
    (contains "hieropt_proftest_latency_seconds_sum 0.5");
  Alcotest.(check bool)
    "histogram count rendered" true
    (contains "hieropt_proftest_latency_seconds_count 1");
  (* the same snapshot surface the JSON /v1/metrics endpoint renders:
     values must agree between the two formats *)
  let json = Repro_serve.Api.metrics_json () in
  let module J = Repro_serve.Json in
  (match Option.bind (J.member "counters" json) (J.member "proftest.requests")
   with
  | Some (J.Num v) -> Alcotest.(check (float 0.0)) "json counter" 3.0 v
  | _ -> Alcotest.fail "counter missing from JSON metrics");
  match
    Option.bind (J.member "histograms" json) (J.member "proftest.latency")
    |> Fun.flip Option.bind (J.member "count")
  with
  | Some (J.Num v) -> Alcotest.(check (float 0.0)) "json histogram" 1.0 v
  | _ -> Alcotest.fail "histogram missing from JSON metrics"

let suite =
  [
    Alcotest.test_case "span reconstruction" `Quick test_span_reconstruction;
    Alcotest.test_case "unbalanced detection" `Quick
      test_unbalanced_detects_stray;
    Alcotest.test_case "utilization window" `Quick test_utilization_window;
    Alcotest.test_case "folded stacks" `Quick test_folded_output;
    QCheck_alcotest.to_alcotest prop_self_time_telescopes;
    QCheck_alcotest.to_alcotest prop_gc_attribution;
    QCheck_alcotest.to_alcotest prop_merge_preserves_nesting;
    QCheck_alcotest.to_alcotest prop_merge_clock_monotone;
    QCheck_alcotest.to_alcotest prop_merge_validate_no_orphans;
    Alcotest.test_case "validate containment" `Quick test_validate_containment;
    Alcotest.test_case "clock offsets" `Quick test_endpoint_offsets_median;
    Alcotest.test_case "live gc capture" `Quick test_live_gc_capture_roundtrip;
    Alcotest.test_case "prometheus rendering" `Quick
      test_prom_matches_snapshot;
  ]
