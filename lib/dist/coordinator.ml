module E = Repro_engine
module Json = Repro_serve.Json
module Http = Repro_serve.Http
module Client = Repro_serve.Client
module P = Repro_moo.Problem
module H = Hieropt.Hierarchy

type worker = {
  endpoint : string;
  client : Client.t;
  mutable alive : bool;
  mutable advertised : string list;
  mutable worker_model_hash : string option;
}

type t = {
  workers : worker list;
  salt : string;
  model_hash : string option;
  mutex : Mutex.t;  (* guards [alive] flips and reads *)
}

let endpoints t = List.map (fun w -> w.endpoint) t.workers
let live_workers t =
  Mutex.lock t.mutex;
  let n = List.length (List.filter (fun w -> w.alive) t.workers) in
  Mutex.unlock t.mutex;
  n

(* ---- creation / probing ------------------------------------------- *)

let probe ~salt w =
  match Client.get_json w.client "/v1/healthz" with
  | Error e ->
    (* not fatal: a worker that is still starting (or already gone) is
       just marked dead; the run proceeds without it *)
    w.alive <- false;
    E.Telemetry.warn ~key:"dist.unreachable_workers"
      "eval worker %s unreachable: %s" w.endpoint (Client.error_to_string e);
    Ok ()
  | Ok j -> (
    match (Json.member "role" j, Json.member "salt" j) with
    | Some (Json.Str "worker"), Some (Json.Str wsalt) when wsalt = salt ->
      w.alive <- true;
      (match Json.member "problems" j with
      | Some (Json.Arr items) ->
        w.advertised <-
          List.filter_map
            (function Json.Str s -> Some s | _ -> None)
            items
      | _ -> ());
      (match Json.member "model_hash" j with
      | Some (Json.Str h) -> w.worker_model_hash <- Some h
      | _ -> ());
      Ok ()
    | Some (Json.Str "worker"), Some (Json.Str wsalt) ->
      (* a mismatched salt is a config error, not a flaky worker: the
         whole run would silently fall back to local evaluation, so
         fail loudly instead *)
      Error
        (Printf.sprintf
           "worker %s serves config salt %s, this run needs %s (start the \
            worker with the same --scale/--seed-independent options)"
           w.endpoint wsalt salt)
    | _ ->
      Error
        (Printf.sprintf "%s is not an eval worker (is it a model server?)"
           w.endpoint))

let create ?(timeout = 120.) ?(retries = 2) ?model_hash ~salt ~endpoints () =
  match
    List.map
      (fun spec ->
        match Repro_serve.Remote.parse_endpoint spec with
        | Error msg -> failwith (Printf.sprintf "--workers %s: %s" spec msg)
        | Ok (host, port, _) ->
          {
            endpoint = spec;
            client = Client.create ~host ~port ~timeout ~retries ();
            alive = false;
            advertised = [];
            worker_model_hash = None;
          })
      endpoints
  with
  | exception Failure msg -> Error msg
  | workers -> (
    let t = { workers; salt; model_hash; mutex = Mutex.create () } in
    match
      List.find_map
        (fun w -> match probe ~salt w with Error e -> Some e | Ok () -> None)
        workers
    with
    | Some msg -> Error msg
    | None -> Ok t)

(* ---- eligibility -------------------------------------------------- *)

(* the PLL problem evaluates against the run's table model, so a shard
   is only distributable when both ends hold the same model (the flow
   builds its model mid-run in memory; there the coordinator has no
   expected hash and system-level evaluation honestly stays local) *)
let requires_model name = name = "pll-system"

let eligible t ~name =
  Mutex.lock t.mutex;
  let ws =
    List.filter
      (fun w ->
        w.alive
        && (name = "" || List.mem name w.advertised)
        && ((not (requires_model name))
           || (t.model_hash <> None && w.worker_model_hash = t.model_hash)))
      t.workers
  in
  Mutex.unlock t.mutex;
  ws

let mark_dead t w =
  Mutex.lock t.mutex;
  if w.alive then begin
    w.alive <- false;
    E.Telemetry.incr "dist.worker_deaths";
    E.Telemetry.warn ~key:"dist.worker_deaths_detail"
      "eval worker %s failed mid-run; reassigning its shard" w.endpoint
  end;
  Mutex.unlock t.mutex

(* ---- chunked work-stealing dispatch ------------------------------- *)

(* Split [n] items into chunks a few times smaller than an even share,
   drain them from a shared queue with one thread per live worker, and
   requeue a failed worker's chunk for the survivors to steal.  Chunks
   whose workers all died (or that never had a worker) are returned for
   local evaluation, so the dispatch always completes.  Results are
   written by item index, so the outcome is independent of who computed
   what — the determinism contract. *)
(* time-in-queue for coordinator work items, from (re)enqueue to a
   worker thread claiming the chunk — always-on, like the pool's *)
let queue_wait = lazy (Repro_obs.Histogram.get "dist.queue_wait")

let dispatch t ~workers ~n ~remote_chunk =
  let leftovers q =
    let rec drain acc =
      match Queue.take_opt q with
      | Some (lo, len, _) -> drain ((lo, len) :: acc)
      | None -> List.rev acc
    in
    drain []
  in
  if n = 0 then []
  else
    match workers with
    | [] -> [ (0, n) ]
    | ws ->
      Repro_obs.Trace.span "dist.dispatch"
        ~args:
          [
            ("items", string_of_int n);
            ("workers", string_of_int (List.length ws));
          ]
      @@ fun () ->
      let chunk = max 1 (n / (List.length ws * 4)) in
      let queue = Queue.create () in
      let lo = ref 0 in
      let now () = Unix.gettimeofday () in
      while !lo < n do
        Queue.add (!lo, min chunk (n - !lo), now ()) queue;
        lo := !lo + chunk
      done;
      let qmutex = Mutex.create () in
      let take () =
        Mutex.lock qmutex;
        let c = Queue.take_opt queue in
        Mutex.unlock qmutex;
        match c with
        | Some (lo, len, enqueued) ->
          Repro_obs.Histogram.observe (Lazy.force queue_wait)
            (now () -. enqueued);
          Some (lo, len)
        | None -> None
      in
      let requeue (lo, len) =
        Mutex.lock qmutex;
        Queue.add (lo, len, now ()) queue;
        Mutex.unlock qmutex
      in
      let serve_worker w =
        let rec loop () =
          match take () with
          | None -> ()
          | Some ((lo, len) as c) ->
            if remote_chunk w lo len then loop ()
            else begin
              (* the worker is gone (or rejected the shard): requeue
                 the chunk for the surviving threads and stop using it *)
              mark_dead t w;
              E.Telemetry.incr "dist.reassigned_chunks";
              requeue c
            end
        in
        loop ()
      in
      let threads = List.map (fun w -> Thread.create serve_worker w) ws in
      List.iter Thread.join threads;
      leftovers queue

(* While tracing, each remote call carries the trace id, the innermost
   open span (the dispatch/batch span — dispatcher sys-threads share
   the main domain's span stack, which is stable while they run) and a
   wall-clock send stamp.  The worker's echo closes the envelope: one
   [dist.clock] instant per round trip records the NTP-style offset
   estimate [trace merge] uses to place that worker on this timeline. *)
let mint_ctx () =
  if not (Repro_obs.Trace.enabled ()) then None
  else
    Some
      {
        Protocol.trace = Repro_obs.Trace.id ();
        parent =
          Option.value ~default:(-1) (Repro_obs.Trace.current_span ());
        t_sent = Unix.gettimeofday ();
      }

let record_clock w (ctx : Protocol.trace_ctx) rj =
  let t_reply_recv = Unix.gettimeofday () in
  match Protocol.trace_echo_of_json rj with
  | None -> ()
  | Some e ->
    let delta =
      Repro_prof.Merge.offset ~t_send:ctx.Protocol.t_sent
        ~t_recv:e.Protocol.t_recv ~t_reply_sent:e.Protocol.t_replied
        ~t_reply_recv
    in
    Repro_obs.Trace.instant "dist.clock"
      ~args:
        [
          ("endpoint", w.endpoint);
          ("delta_s", Printf.sprintf "%.9f" delta);
          ("span", string_of_int e.Protocol.span);
        ]

let post_json w target j =
  let ctx = mint_ctx () in
  match
    Client.post w.client target
      ~body:(Json.to_string (Protocol.with_trace_ctx ctx j))
  with
  | Ok { Http.status = 200; resp_body; _ } -> (
    match Json.of_string resp_body with
    | Ok rj ->
      Option.iter (fun c -> record_clock w c rj) ctx;
      Some rj
    | Error _ -> None)
  | Ok _ | Error _ -> None

(* ---- GA population evaluation ------------------------------------- *)

(* warm every live worker's cache with the freshly computed entries so
   the next generation's shards hit warm caches wherever they land;
   best-effort and synchronous (the lines are small, and a failed warm
   only costs future cache hits, never correctness) *)
let warm_caches t ~kind xs evals =
  if Array.length xs > 0 then begin
    let lines =
      Array.to_list
        (Array.mapi
           (fun i x ->
             E.Cache.entry_to_line (E.Cache.key ~kind x) (P.pack evals.(i)))
           xs)
    in
    let body = String.concat "\n" lines ^ "\n" in
    List.iter
      (fun w ->
        match Client.put w.client "/v1/cache" ~body with
        | Ok _ | Error _ -> ())
      (eligible t ~name:"")
  end

let eval_bulk t ~salt (problem : P.t) xs =
  let n = Array.length xs in
  let out = Array.make n None in
  let model_hash =
    if requires_model problem.P.name then t.model_hash else None
  in
  let remote_chunk w lo len =
    let req =
      {
        Protocol.problem = problem.P.name;
        salt;
        model_hash;
        points = Array.sub xs lo len;
      }
    in
    match post_json w "/v1/eval" (Protocol.eval_request_to_json req) with
    | None -> false
    | Some j -> (
      match Protocol.results_of_json j with
      | Ok rows
        when Array.length rows = len
             && Array.for_all
                  (fun r -> Array.length r = 1 + P.n_objectives problem)
                  rows ->
        Array.iteri (fun i row -> out.(lo + i) <- Some (P.unpack row)) rows;
        true
      | Ok _ | Error _ -> false)
  in
  let workers = eligible t ~name:problem.P.name in
  let leftover = dispatch t ~workers ~n ~remote_chunk in
  let local_n =
    List.fold_left (fun acc (_, len) -> acc + len) 0 leftover
  in
  E.Telemetry.incr "dist.remote_points" ~by:(n - local_n);
  if local_n > 0 then begin
    E.Telemetry.incr "dist.local_points" ~by:local_n;
    List.iter
      (fun (lo, len) ->
        let sub = Array.sub xs lo len in
        let evals = E.Parmap.map problem.P.evaluate sub in
        Array.iteri (fun i e -> out.(lo + i) <- Some e) evals)
      leftover
  end;
  let evals =
    Array.map (function Some e -> e | None -> assert false) out
  in
  warm_caches t ~kind:(P.cache_kind ~salt problem) xs evals;
  evals

(* ---- Monte-Carlo sample batches ----------------------------------- *)

let mc_bulk t ~salt ~params ~local streams =
  let n = Array.length streams in
  let out = Array.make n None in
  let remote_chunk w lo len =
    let req =
      { Protocol.mc_salt = salt; params; streams = Array.sub streams lo len }
    in
    match post_json w "/v1/eval" (Protocol.mc_request_to_json req) with
    | None -> false
    | Some j -> (
      match Protocol.results_of_json j with
      | Ok rows when Array.length rows = len -> (
        match Array.map Protocol.outcome_of_perf_row rows with
        | outcomes ->
          Array.iteri (fun i o -> out.(lo + i) <- Some o) outcomes;
          true
        | exception Failure _ -> false)
      | Ok _ | Error _ -> false)
  in
  (* every worker evaluates MC shards with its own config (guarded by
     the salt), so eligibility is just liveness *)
  let workers = eligible t ~name:"" in
  let leftover = dispatch t ~workers ~n ~remote_chunk in
  let local_n = List.fold_left (fun acc (_, len) -> acc + len) 0 leftover in
  E.Telemetry.incr "dist.remote_mc_trials" ~by:(n - local_n);
  if local_n > 0 then begin
    E.Telemetry.incr "dist.local_mc_trials" ~by:local_n;
    List.iter
      (fun (lo, len) ->
        let outcomes = local (Array.sub streams lo len) in
        Array.iteri (fun i o -> out.(lo + i) <- Some o) outcomes)
      leftover
  end;
  Array.map (function Some o -> o | None -> assert false) out

(* ---- the Hierarchy hook ------------------------------------------- *)

let remote t =
  {
    H.topology = endpoints t;
    remote_evaluator =
      (fun ~salt ~cache ->
        fun problem xs ->
         P.cached_evaluator ~cache ~salt
           ~bulk:(fun problem xs -> eval_bulk t ~salt problem xs)
           () problem xs);
    remote_mc =
      (fun ~salt ->
        fun ~params ~local streams -> mc_bulk t ~salt ~params ~local streams);
  }
