(** Thread-safe registry of loaded table models.

    A registry serves the models under one root directory: the root
    itself (id ["default"]) when it directly holds a [pareto.tbl]
    archive, plus every immediate subdirectory that holds one (id =
    directory name).  Models load lazily on first query and are kept
    hot behind an LRU bound; each cache entry is keyed by the
    fingerprint (mtime + size) of its [pareto.tbl], so overwriting a
    model directory on disk invalidates the cached table on the next
    request instead of serving stale interpolations.

    All operations are mutex-protected — safe from any mix of server
    worker domains and threads. *)

type t

type error =
  | Unknown_model of string        (** no such id under the root *)
  | Invalid_id of string           (** id fails the safe-name check *)
  | Load_failure of { id : string; message : string }

val error_to_string : error -> string

val create : ?capacity:int -> root:string -> unit -> t
(** [capacity] (default 8, min 1) bounds how many models stay loaded;
    the least-recently-used entry is evicted beyond it. *)

val root : t -> string

val get : t -> string -> (Hieropt.Perf_table.t, error) result
(** Resolve an id to a loaded model, loading/reloading as needed.
    Ids are restricted to ["default"] or names matching
    [[A-Za-z0-9._-]+] without leading dots — path traversal is an
    {!Invalid_id}, not a filesystem probe. *)

val fingerprint : t -> string -> (float * int, error) result
(** (mtime, size) of the id's [pareto.tbl] right now — the cache
    -invalidation fingerprint, without touching the registry lock or
    loading anything.  Lets per-domain handle caches revalidate with a
    single [stat] on the hot path. *)

type info = {
  id : string;
  dir : string;
  loaded : bool;
  entries : int option;  (** Pareto entries when loaded *)
}

val list : t -> info list
(** Every servable model id under the root (sorted), with load state. *)

val loaded_count : t -> int
