(** Fixed log-bucket histograms for latencies and other positive-ish
    values, with quantile estimates.

    Buckets are geometric between [lo] and [hi] (defaults cover 1 µs to
    ~17 min in 72 buckets, a constant ~21% relative width).  Values
    outside the range land in the edge buckets.  Quantiles interpolate
    geometrically within a bucket and clamp to the observed min/max, so
    they are monotone in [q], always bounded by the true extremes, and
    exact when all observations are equal.

    Instances are mutex-protected; a global named registry mirrors the
    Telemetry counter registry and feeds [GET /metrics]. *)

type t

val create : ?buckets:int -> ?lo:float -> ?hi:float -> unit -> t
val observe : t -> float -> unit
(** Record one value; non-finite values are dropped. *)

val time : t -> (unit -> 'a) -> 'a
(** Run a thunk and record its wall-clock duration in seconds (also on
    exceptions). *)

val quantile : t -> float -> float
(** Estimated q-quantile ([0..1], clamped); 0 when empty. *)

val count : t -> int

type stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val stats : t -> stats
(** One consistent point-in-time summary (all fields 0 when empty). *)

(** {2 Named registry} *)

val get : ?buckets:int -> ?lo:float -> ?hi:float -> string -> t
(** Find-or-create by name; size parameters apply only on creation. *)

val all : unit -> (string * t) list
(** Every registered histogram, name-sorted. *)

val clear_registry : unit -> unit
(** Drop all registered histograms (bench sections, tests). *)
