(** Reading and writing the whitespace-separated ".tbl" data files that
    Verilog-A's [$table_model] consumes (the paper's "datafile.tbl",
    "kvco_delta.tbl", "p1_data.tbl", ...).

    Format: one sample per line, [n] input columns followed by one output
    column; blank lines and lines starting with [#], [*] or [//] are
    ignored.  SPICE suffixes ("2.1p") are accepted on read. *)

type t = {
  inputs : float array array; (** row-major: [inputs.(i)] is row i's input columns *)
  outputs : float array;      (** row i's output value *)
}

val columns : t -> int
(** Number of input columns (0 when the table is empty). *)

val rows : t -> int

val of_rows : (float array * float) list -> t
(** Build from [(input_columns, output)] rows.
    @raise Invalid_argument on ragged rows. *)

val to_string : ?header:string -> t -> string
(** Render to the .tbl text format; [header] becomes a [#] comment. *)

val of_string : string -> t
(** Parse .tbl text. @raise Failure on malformed lines. *)

val save : ?header:string -> string -> t -> unit
(** Write to a file path. *)

val load : string -> t
(** Read from a file path. @raise Sys_error / Failure. *)

val table1d : ?control:string -> t -> Table1d.t
(** Interpret a 1-input table as a {!Table1d} model.
    @raise Invalid_argument when the table does not have exactly 1 input
    column. *)

val table_nd : ?scheme:Table_nd.scheme -> t -> Table_nd.t
(** Interpret as a scattered N-input model. *)
