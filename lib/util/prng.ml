type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable spare : float option; (* second Box-Muller deviate *)
}

(* splitmix64: used only to expand a seed into initial xoshiro state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; spare = None }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256++ *)
let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) land max_int in
  create seed

let split_n t n =
  if n < 0 then invalid_arg "Prng.split_n: negative count";
  let out = Array.make n t in
  for i = 0 to n - 1 do
    out.(i) <- split t
  done;
  out

(* xoshiro256 jump polynomial: advances the state by 2^128 steps, giving
   2^128 non-overlapping subsequences. *)
let jump_constants =
  [| 0x180ec6d33cfd0abaL; 0xd5a61266f0c9392cL; 0xa9582618e03fc9aaL;
     0x39abdc4529b1661cL |]

let jump t =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  Array.iter
    (fun c ->
      for b = 0 to 63 do
        if Int64.logand c (Int64.shift_left 1L b) <> 0L then begin
          s0 := Int64.logxor !s0 t.s0;
          s1 := Int64.logxor !s1 t.s1;
          s2 := Int64.logxor !s2 t.s2;
          s3 := Int64.logxor !s3 t.s3
        end;
        ignore (bits64 t)
      done)
    jump_constants;
  t.s0 <- !s0;
  t.s1 <- !s1;
  t.s2 <- !s2;
  t.s3 <- !s3;
  t.spare <- None

let copy t = { t with spare = t.spare }

(* State capture for checkpointing: the four xoshiro words plus the
   buffered Box-Muller deviate (flag + payload), 6 words total. *)
let to_bits t =
  let spare_flag, spare_bits =
    match t.spare with
    | None -> (0L, 0L)
    | Some v -> (1L, Int64.bits_of_float v)
  in
  [| t.s0; t.s1; t.s2; t.s3; spare_flag; spare_bits |]

let of_bits a =
  if Array.length a <> 6 then None
  else if a.(4) <> 0L && a.(4) <> 1L then None
  else
    Some
      {
        s0 = a.(0);
        s1 = a.(1);
        s2 = a.(2);
        s3 = a.(3);
        spare = (if a.(4) = 1L then Some (Int64.float_of_bits a.(5)) else None);
      }

(* 53-bit mantissa from the top bits, uniform in [0,1). *)
let uniform t =
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. 0x1.0p-53

let float t bound = uniform t *. bound
let range t lo hi = lo +. (uniform t *. (hi -. lo))

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* rejection-free for our purposes: modulo bias is negligible for n << 2^63 *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int n))

let bool t = Int64.logand (bits64 t) 1L = 1L

let normal t =
  match t.spare with
  | Some z ->
    t.spare <- None;
    z
  | None ->
    (* Box-Muller on (0,1] uniforms to avoid log 0 *)
    let u1 = 1.0 -. uniform t in
    let u2 = uniform t in
    let r = sqrt (-2.0 *. log u1) in
    let theta = 2.0 *. Float.pi *. u2 in
    t.spare <- Some (r *. sin theta);
    r *. cos theta

let gaussian t ~mean ~sigma = mean +. (sigma *. normal t)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))
