(** Flat transistor-level netlists.

    Nodes are small integers with node 0 reserved for ground; named nodes
    are interned on first use.  Elements carry their sampled process
    perturbations ([vth_shift], [kp_scale]) so a Monte-Carlo trial is just
    a mapped copy of the nominal netlist (see {!Process}). *)

type node = int

val ground : node

type element =
  | Resistor of { name : string; n1 : node; n2 : node; value : float }
  | Capacitor of { name : string; n1 : node; n2 : node; value : float }
  | Vsource of { name : string; npos : node; nneg : node; source : Source.t }
  | Isource of { name : string; npos : node; nneg : node; source : Source.t }
      (** current [value] flows from [npos] through the source to [nneg] *)
  | Mos of {
      name : string;
      drain : node;
      gate : node;
      source : node;
      model : Mosfet.model;
      w : float;
      l : float;
      vth_shift : float;
      kp_scale : float;
    }

val element_name : element -> string

type t

val create : unit -> t

val node : t -> string -> node
(** Intern a node name ("0", "gnd" and "GND" all mean ground). *)

val node_count : t -> int
(** Number of nodes including ground; node ids are [0 .. node_count - 1]. *)

val node_name : t -> node -> string
val find_node : t -> string -> node option

val add : t -> element -> unit
(** @raise Invalid_argument on a duplicate element name or a dangling
    node id. *)

(* Convenience builders; node arguments are names. *)
val resistor : t -> string -> string -> string -> float -> unit
val capacitor : t -> string -> string -> string -> float -> unit
val vsource : t -> string -> string -> string -> Source.t -> unit
val isource : t -> string -> string -> string -> Source.t -> unit

val mosfet :
  t ->
  string ->
  drain:string ->
  gate:string ->
  source:string ->
  model:Mosfet.model ->
  w:float ->
  l:float ->
  unit

val elements : t -> element list
(** In insertion order. *)

val map_elements : (element -> element) -> t -> t
(** Structural copy with each element rewritten (names and node ids must
    be preserved by [f]); this is how process sampling perturbs devices. *)

val mos_count : t -> int

val copy : t -> t

val to_spice : t -> string
(** Render as a SPICE-like deck (re-parseable by the [repro_netlist]
    front end; values rounded to {!Repro_util.Si.format} precision). *)
