(** Baseline optimisers the benches compare NSGA-II against.

    The paper's background (§2, [11], [12]) frames NSGA-II against the
    classical alternatives: pure random exploration of the design space
    and scalarised (weighted-sum) single-objective search.  Both are
    implemented over the same {!Problem} abstraction so a comparison is
    one function call. *)

val random_search :
  evaluations:int ->
  Problem.t ->
  Repro_util.Prng.t ->
  Nsga2.individual array
(** Uniform sampling of the design box; returns all evaluated points
    (take the front with {!Nsga2.pareto_front}). *)

type ws_options = {
  population : int;
  generations : int;
  mutation_sigma : float;  (** Gaussian step, fraction of the box span *)
  elite : int;
}

val default_ws_options : ws_options

val weighted_sum_ga :
  ?options:ws_options ->
  weights:float array ->
  normalise:float array ->
  Problem.t ->
  Repro_util.Prng.t ->
  Nsga2.individual
(** Single-objective (µ+λ) evolution strategy on
    sum_i w_i * f_i(x) / normalise_i, with a large penalty for
    constraint violation.  Returns the best individual found. *)

val weighted_sum_front :
  ?options:ws_options ->
  n_weights:int ->
  normalise:float array ->
  Problem.t ->
  Repro_util.Prng.t ->
  Nsga2.individual array
(** Classical multi-run scalarisation: [n_weights] random weight vectors,
    one GA run each — the front NSGA-II is meant to beat in a single
    run.  Only 'convex-hull' points are reachable this way. *)
