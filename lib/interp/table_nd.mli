(** Multi-input table models over scattered sample points.

    The paper's Listing 1 calls [$table_model] with up to five inputs
    (kvco, ivco, jvco, fmin, fmax) against Pareto-front data, which is
    inherently scattered rather than gridded.  This module provides the
    scattered-data interpolators used for those parameter-recovery tables
    (see DESIGN.md §5): inverse-distance weighting (Shepard's method,
    optionally restricted to the k nearest samples) and plain
    nearest-neighbour lookup.  Inputs are normalised per-dimension to the
    sample bounding box so heterogeneous units (Hz vs mA) weigh equally. *)

type kernel =
  | Thin_plate          (** φ(r) = r² ln r *)
  | Gaussian of float   (** φ(r) = exp(-(εr)²) with shape parameter ε *)

type scheme =
  | Nearest            (** value of the closest sample *)
  | Idw of { power : float; neighbours : int }
      (** Shepard weights [1/d^power] over the [neighbours] closest
          samples ([neighbours <= 0] means all samples) *)
  | Rbf of kernel
      (** radial-basis-function interpolation: exact at the samples and
          smooth between them (a dense linear solve at build time);
          ridge-regularised so near-duplicate samples stay solvable *)

type t

val build : ?scheme:scheme -> float array array -> float array -> t
(** [build points values]: [points.(i)] is the i-th sample coordinate
    vector (all the same dimension), [values.(i)] its value.
    Default scheme: [Idw {power = 2.0; neighbours = 4}].
    @raise Invalid_argument on empty/ragged input. *)

val eval : t -> float array -> float
(** Interpolated value at a query point of matching dimension.  An exact
    hit on a sample returns that sample's value. *)

val dimension : t -> int
val size : t -> int

val bounds : t -> (float * float) array
(** Per-dimension (min, max) of the sample cloud. *)
