module E = Repro_engine
module Json = Repro_serve.Json
module Http = Repro_serve.Http
module H = Hieropt.Hierarchy
module P = Repro_moo.Problem
module V = Repro_spice.Vco_measure
module T = Repro_circuit.Topologies

type t = {
  version : string;
  salt : string;
  cfg : H.config;
  vco : P.t;
  pll : (P.t * string) option;  (* problem, model fingerprint *)
  cache : E.Cache.t;
  started : float;
}

let create ?(version = "dev") ?model ~config () =
  let pll =
    Option.map
      (fun m ->
        ( Hieropt.Pll_problem.problem (H.pll_config_of config m),
          Protocol.model_fingerprint m ))
      model
  in
  {
    version;
    salt = H.config_salt config;
    cfg = config;
    vco = H.circuit_problem config;
    pll;
    cache = E.Cache.create ();
    started = Unix.gettimeofday ();
  }

let salt t = t.salt
let cache t = t.cache

let problems t =
  t.vco.P.name :: (match t.pll with Some (p, _) -> [ p.P.name ] | None -> [])

(* ---- responses ---------------------------------------------------- *)

let json_body j = Json.to_string j
let error_body msg = json_body (Json.Obj [ ("error", Json.Str msg) ])
let ok body = (200, [], body)
let bad_request msg = (400, [], error_body msg)
let not_found () = (404, [], error_body "not found")
let conflict msg = (409, [], error_body msg)

let method_not_allowed allow =
  (405, [ ("Allow", allow) ], error_body "method not allowed")

let text = [ ("Content-Type", "text/plain; charset=utf-8") ]

(* ---- endpoints ---------------------------------------------------- *)

let healthz t =
  ok
    (json_body
       (Json.Obj
          ([
             ("status", Json.Str "ok");
             ("role", Json.Str "worker");
             ("version", Json.Str t.version);
             ("salt", Json.Str t.salt);
             ("jobs", Json.Num (float_of_int (E.Config.jobs ())));
             ( "problems",
               Json.Arr (List.map (fun n -> Json.Str n) (problems t)) );
             ("started_at", Json.Num t.started);
             ( "uptime_seconds",
               Json.Num (Unix.gettimeofday () -. t.started) );
             ( "cache_entries",
               Json.Num (float_of_int (E.Cache.length t.cache)) );
             ("cache_hits", Json.Num (float_of_int (E.Cache.hits t.cache)));
             ( "cache_misses",
               Json.Num (float_of_int (E.Cache.misses t.cache)) );
           ]
          @
          match t.pll with
          | Some (_, hash) -> [ ("model_hash", Json.Str hash) ]
          | None -> [])))

(* one Monte-Carlo sample shard: rebuild the netlist from the 7-float
   parameter vector and evaluate each pre-split stream exactly as
   Variation_model's local path would — same measurement options, same
   Process.sample call, so the outcome rows are bit-identical *)
let run_mc t ~echo (req : Protocol.mc_request) =
  if req.Protocol.mc_salt <> t.salt then
    conflict
      (Printf.sprintf "config salt mismatch: request %s, worker %s"
         req.Protocol.mc_salt t.salt)
  else if Array.length req.Protocol.params <> 7 then
    bad_request "params: expected the 7-float vco_params vector"
  else begin
    let m = t.cfg.H.measure in
    let net =
      H.circuit_netlist t.cfg (T.vco_params_of_vector req.Protocol.params)
    in
    let trial perturbed =
      match V.characterise_netlist ~options:m perturbed with
      | Ok p -> Ok p
      | Error f -> Error (V.failure_to_string f)
    in
    let streams = req.Protocol.streams in
    let n = Array.length streams in
    E.Telemetry.incr "dist.worker_mc_trials" ~by:n;
    let chunk = max 1 (n / E.Pool.size (E.Pool.get_default ())) in
    let outcomes =
      E.Parmap.map ~chunk
        (fun s ->
          trial (Repro_circuit.Process.sample t.cfg.H.process s net))
        streams
    in
    ok
      (json_body
         (Protocol.with_trace_echo (echo ())
            (Protocol.results_to_json
               (Array.map Protocol.perf_row_of_outcome outcomes))))
  end

let run_eval t ~echo (req : Protocol.eval_request) =
  if req.Protocol.salt <> t.salt then
    conflict
      (Printf.sprintf "config salt mismatch: request %s, worker %s"
         req.Protocol.salt t.salt)
  else begin
    let problem =
      if req.Protocol.problem = t.vco.P.name then Ok t.vco
      else
        match t.pll with
        | Some (p, hash) when req.Protocol.problem = p.P.name ->
          if req.Protocol.model_hash = Some hash then Ok p
          else
            Error
              (conflict
                 (Printf.sprintf
                    "model hash mismatch: request %s, worker %s"
                    (Option.value req.Protocol.model_hash ~default:"<none>")
                    hash))
        | _ ->
          Error
            ((404, [], error_body
                ("unknown problem: " ^ req.Protocol.problem)))
    in
    match problem with
    | Error resp -> resp
    | Ok problem ->
      let points = req.Protocol.points in
      (match
         Array.iter
           (fun p ->
             if Array.length p <> P.n_vars problem then
               failwith "point arity does not match the problem")
           points
       with
      | () ->
        E.Telemetry.incr "dist.worker_eval_points" ~by:(Array.length points);
        (* the worker's own cache + pool path: identical code to a
           local run, so results (and cache lines) agree byte for
           byte *)
        let evals =
          P.parallel_evaluator ~cache:t.cache ~salt:t.salt () problem points
        in
        ok
          (json_body
             (Protocol.with_trace_echo (echo ())
                (Protocol.results_to_json (Array.map P.pack evals))))
      | exception Failure msg -> bad_request msg)
  end

let eval t body =
  match Json.of_string body with
  | Error msg -> bad_request msg
  | Ok j ->
    (* propagated trace context: tag this worker's span with the
       coordinator's trace/parent ids and echo wall-clock
       receive/reply stamps so the merge step can estimate the clock
       offset.  [t_recv] is taken before any evaluation work. *)
    let ctx = Protocol.trace_ctx_of_json j in
    let t_recv = Unix.gettimeofday () in
    let echo () =
      Option.map
        (fun (_ : Protocol.trace_ctx) ->
          {
            Protocol.span =
              Option.value ~default:(-1) (Repro_obs.Trace.current_span ());
            t_recv;
            t_replied = Unix.gettimeofday ();
          })
        ctx
    in
    let dispatch () =
      match Json.get_string "problem" j with
      | Error msg -> bad_request msg
      | Ok "mc" -> (
        match Protocol.mc_request_of_json j with
        | Ok req -> run_mc t ~echo req
        | Error msg -> bad_request msg)
      | Ok _ -> (
        match Protocol.eval_request_of_json j with
        | Ok req -> run_eval t ~echo req
        | Error msg -> bad_request msg)
    in
    (match ctx with
    | Some c ->
      (* a negative parent means "traced coordinator, no open span":
         keep the trace tag but omit the parent link *)
      let args =
        ("trace", c.Protocol.trace)
        ::
        (if c.Protocol.parent >= 0 then
           [ ("parent", string_of_int c.Protocol.parent) ]
         else [])
      in
      Repro_obs.Trace.span "dist.work" ~args dispatch
    | None -> dispatch ())

(* ---- the shared-cache protocol ------------------------------------ *)

let cache_get t id =
  match E.Cache.find_by_id t.cache id with
  | Some (key, value) -> (200, text, E.Cache.entry_to_line key value)
  | None -> not_found ()

(* the key hash is recomputed by [entry_of_line], never trusted from
   the peer; [store] is first-writer-wins, so replays are harmless *)
let store_line t line =
  match E.Cache.entry_of_line (String.trim line) with
  | Some (key, value) ->
    E.Cache.store t.cache key value;
    Some key
  | None -> None

let cache_put t id body =
  match store_line t body with
  | Some key when E.Cache.key_id key = id -> (204, [], "")
  | Some _ -> bad_request "entry does not match the requested id"
  | None -> bad_request "malformed cache entry line"

let cache_put_bulk t body =
  let stored = ref 0 in
  String.split_on_char '\n' body
  |> List.iter (fun line ->
         if String.trim line <> "" then
           match store_line t line with
           | Some _ -> incr stored
           | None -> ());
  E.Telemetry.incr "dist.cache_warm_lines" ~by:!stored;
  ok (json_body (Json.Obj [ ("stored", Json.Num (float_of_int !stored)) ]))

(* ---- routing ------------------------------------------------------ *)

(* /v1/* is canonical; bare paths are aliases for one release, same
   policy as the model server *)
let split_version (req : Http.request) =
  match req.Http.path with "v1" :: rest -> (rest, true) | p -> (p, false)

let endpoint_of_path = function
  | [ "healthz" ] -> "healthz"
  | [ "eval" ] -> "eval"
  | [ "metrics" ] -> "metrics"
  | "cache" :: _ -> "cache"
  | _ -> "other"

(* same surface as the model server's /v1/metrics: JSON by default,
   Prometheus text with ?format=prom *)
let metrics (req : Http.request) =
  match
    Option.value ~default:"json" (Repro_serve.Api.query_param req "format")
  with
  | "json" -> ok (json_body (Repro_serve.Api.metrics_json ()))
  | "prom" | "prometheus" ->
    ( 200,
      [ ("Content-Type", "text/plain; version=0.0.4; charset=utf-8") ],
      Repro_prof.Prom.render () )
  | other ->
    bad_request (Printf.sprintf "format: expected json or prom, got %S" other)

let handler t (req : Http.request) =
  E.Telemetry.incr "dist.requests";
  let path, versioned = split_version req in
  let endpoint = endpoint_of_path path in
  if (not versioned) && endpoint <> "other" then
    E.Telemetry.incr "dist.legacy_requests";
  let latency = Repro_obs.Histogram.get ("dist.latency." ^ endpoint) in
  Repro_obs.Histogram.time latency @@ fun () ->
  Repro_obs.Trace.span ("dist." ^ endpoint) ~args:[ ("method", req.Http.meth) ]
  @@ fun () ->
  match
    match (req.Http.meth, path) with
    | "GET", [ "healthz" ] -> healthz t
    | "GET", [ "metrics" ] -> metrics req
    | "POST", [ "eval" ] -> eval t req.Http.body
    | "GET", [ "cache"; id ] -> cache_get t id
    | "PUT", [ "cache"; id ] -> cache_put t id req.Http.body
    | "PUT", [ "cache" ] -> cache_put_bulk t req.Http.body
    | _, [ "healthz" ] | _, [ "metrics" ] -> method_not_allowed "GET"
    | _, [ "eval" ] -> method_not_allowed "POST"
    | _, [ "cache" ] | _, [ "cache"; _ ] -> method_not_allowed "GET, PUT"
    | _ -> not_found ()
  with
  | response -> response
  | exception exn ->
    E.Telemetry.incr "dist.handler_errors";
    (500, [], error_body (Printexc.to_string exn))

let serve ?addr ?port ?(reactors = 2) ?request_timeout t =
  Repro_serve.Server.start_with ?addr ?port ~reactors ?request_timeout
    ~handler:(handler t) ()
