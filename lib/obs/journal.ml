let default_file = "run.journal"

type t = {
  path : string;
  run_id : string;
  oc : out_channel;
  mutex : Mutex.t;
}

let path t = t.path
let run_id t = t.run_id

let gen_run_id () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d%02d%02dT%02d%02d%02dZ-%d" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec (Unix.getpid ())

let create ?run_id ~dir () =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = Filename.concat dir default_file in
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
  in
  let run_id = match run_id with Some id -> id | None -> gen_run_id () in
  { path; run_id; oc; mutex = Mutex.create () }

let close t =
  Mutex.lock t.mutex;
  (try close_out t.oc with Sys_error _ -> ());
  Mutex.unlock t.mutex

(* one line = one event: a single [output_string] of the whole record
   under the journal mutex, flushed immediately so a killed run keeps
   everything it logged *)
let event t name fields =
  let line =
    Jfmt.obj
      (("ts", Jfmt.F (Unix.gettimeofday ()))
      :: ("run", Jfmt.S t.run_id)
      :: ("event", Jfmt.S name)
      :: fields)
    ^ "\n"
  in
  Mutex.lock t.mutex;
  (try
     output_string t.oc line;
     flush t.oc
   with Sys_error _ -> ());
  Mutex.unlock t.mutex

(* ---- process-current journal ------------------------------------- *)

let current : t option Atomic.t = Atomic.make None
let set_current t = Atomic.set current (Some t)
let clear_current () = Atomic.set current None
let active () = Atomic.get current <> None
let with_current f = match Atomic.get current with None -> () | Some t -> f t

(* ---- typed events ------------------------------------------------- *)

let run_start t ~fingerprint fields =
  event t "run.start" (("fingerprint", Jfmt.S fingerprint) :: fields)

let run_finish t ~seconds fields =
  event t "run.finish" (("seconds", Jfmt.F seconds) :: fields)

let record_phase_start name =
  with_current (fun t -> event t "phase.start" [ ("phase", Jfmt.S name) ])

let record_phase_finish name ~seconds =
  with_current (fun t ->
      event t "phase.finish"
        [ ("phase", Jfmt.S name); ("seconds", Jfmt.F seconds) ])

let record_ga_generation ~label ~generation ~front_size ~spread ~hypervolume =
  with_current (fun t ->
      event t "ga.generation"
        [
          ("label", Jfmt.S label);
          ("generation", Jfmt.I generation);
          ("front_size", Jfmt.I front_size);
          ("spread", Jfmt.F spread);
          ("hypervolume", Jfmt.F hypervolume);
        ])

let record_evals ~label ~avoided ~paid =
  with_current (fun t ->
      event t "evals"
        [
          ("label", Jfmt.S label);
          ("avoided", Jfmt.I avoided);
          ("paid", Jfmt.I paid);
        ])

let record_checkpoint ~action ~path =
  with_current (fun t ->
      event t "checkpoint" [ ("action", Jfmt.S action); ("path", Jfmt.S path) ])

let record_warning ~key msg =
  with_current (fun t ->
      event t "warning" [ ("key", Jfmt.S key); ("message", Jfmt.S msg) ])
