let suffix_value = function
  | "f" -> Some 1e-15
  | "p" -> Some 1e-12
  | "n" -> Some 1e-9
  | "u" -> Some 1e-6
  | "m" -> Some 1e-3
  | "k" -> Some 1e3
  | "meg" -> Some 1e6
  | "g" -> Some 1e9
  | "t" -> Some 1e12
  | "" -> Some 1.0
  | _ -> None

(* Strict single-pass grammar (no greedy scan-and-backtrack, which is
   where lax acceptance of trailing garbage hides):

     value  ::= sign? mantissa exponent? suffix
     mantissa ::= digits [ "." digits? ] | "." digits
     exponent ::= "e" sign? digits
     suffix ::= "" | f p n u m k meg g t

   The numeric part must end exactly where a known suffix begins and the
   suffix must consume the rest of the string, so "10ux", "3kk",
   "2.2uF" and friends are all rejected. *)
let parse_opt s =
  let s = String.trim (String.lowercase_ascii s) in
  let n = String.length s in
  let is_digit c = c >= '0' && c <= '9' in
  let digits i =
    (* index after the run of digits starting at [i] *)
    let j = ref i in
    while !j < n && is_digit s.[!j] do incr j done;
    !j
  in
  let sign i = if i < n && (s.[i] = '+' || s.[i] = '-') then i + 1 else i in
  let mantissa i =
    let d0 = digits i in
    if d0 > i then
      (* digits [ "." digits? ] *)
      if d0 < n && s.[d0] = '.' then Some (digits (d0 + 1)) else Some d0
    else if i < n && s.[i] = '.' then
      (* "." digits — at least one digit required after a bare dot *)
      let d1 = digits (i + 1) in
      if d1 > i + 1 then Some d1 else None
    else None
  in
  let exponent i =
    if i < n && s.[i] = 'e' then
      let j = sign (i + 1) in
      let d = digits j in
      if d > j then Some d else None
    else Some i
  in
  match mantissa (sign 0) with
  | None -> None
  | Some i -> (
    match exponent i with
    | None -> None
    | Some stop -> (
      match suffix_value (String.sub s stop (n - stop)) with
      | None -> None
      | Some m -> Some (float_of_string (String.sub s 0 stop) *. m)))

let parse s =
  match parse_opt s with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Si.parse: malformed value %S" s)

(* SPICE suffixes are case-insensitive, so the parseable rendering must
   use "meg" (not "M", which reads back as milli) *)
let spice_prefixes =
  [| (1e-15, "f"); (1e-12, "p"); (1e-9, "n"); (1e-6, "u"); (1e-3, "m");
     (1.0, ""); (1e3, "k"); (1e6, "meg"); (1e9, "g"); (1e12, "t") |]

let display_prefixes =
  [| (1e-15, "f"); (1e-12, "p"); (1e-9, "n"); (1e-6, "u"); (1e-3, "m");
     (1.0, ""); (1e3, "k"); (1e6, "M"); (1e9, "G"); (1e12, "T") |]

let format_with prefixes x =
  if x = 0.0 then "0"
  else if not (Float.is_finite x) then string_of_float x
  else begin
    let ax = Float.abs x in
    let scale, suffix =
      let chosen = ref prefixes.(0) in
      Array.iter
        (fun (s, _ as p) -> if ax >= s *. 0.9999995 then chosen := p)
        prefixes;
      !chosen
    in
    let v = x /. scale in
    Printf.sprintf "%.4g%s" v suffix
  end

let format x = format_with spice_prefixes x
let format_unit x u = format_with display_prefixes x ^ u
