type t = {
  host : string;
  port : int;
  timeout : float;
  retries : int;
  mutex : Mutex.t;  (* serialises calls and guards the cached socket *)
  mutable fd : Unix.file_descr option;  (* kept-alive connection *)
}

type error =
  | Connect_failure of string
  | Http_error of { status : int; body : string }
  | Protocol_error of string

let error_to_string = function
  | Connect_failure msg -> "cannot reach model server: " ^ msg
  | Http_error { status; body } ->
    let detail =
      match Json.of_string body with
      | Ok j -> (
        match Json.member "error" j with
        | Some (Json.Str msg) -> msg
        | _ -> body)
      | Error _ -> body
    in
    Printf.sprintf "server returned %d %s: %s" status
      (Http.reason_phrase status) detail
  | Protocol_error msg -> "malformed server response: " ^ msg

let create ?(host = "127.0.0.1") ?(port = 8190) ?(timeout = 10.) ?(retries = 2)
    () =
  {
    host;
    port;
    timeout = max 0.1 timeout;
    retries = max 0 retries;
    mutex = Mutex.create ();
    fd = None;
  }

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> failwith ("no address for " ^ host)
    | { Unix.h_addr_list; _ } -> h_addr_list.(0)
    | exception Not_found -> failwith ("cannot resolve " ^ host))

let drop_connection t =
  match t.fd with
  | None -> ()
  | Some fd ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    t.fd <- None

(* the cached keep-alive socket, or a fresh connection; the bool says
   which, so a failure on a reused socket (the server may have idled it
   out between calls) can be distinguished from a real one *)
let obtain t =
  match t.fd with
  | Some fd -> (fd, true)
  | None ->
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (match
       Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.timeout;
       Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.timeout;
       Unix.setsockopt fd Unix.TCP_NODELAY true;
       Unix.connect fd (Unix.ADDR_INET (resolve t.host, t.port))
     with
    | () -> ()
    | exception exn ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise exn);
    t.fd <- Some fd;
    (fd, false)

let response_keeps_alive (resp : Http.response) =
  match Http.header "connection" resp.resp_headers with
  | Some v -> String.lowercase_ascii v <> "close"
  | None -> true

(* one request over the kept-alive connection.  A reused socket that
   turns out dead (idled out server-side between our calls) is retried
   once on a fresh connection before the failure counts — that retry is
   free, not one of the caller's transient retries. *)
let round_trip t ~headers ~meth ~target ~body =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) @@ fun () ->
  let once () =
    match obtain t with
    | exception exn -> `Raised (exn, false)
    | fd, reused -> (
      match
        Http.write_request
          ~headers:
            (("Host", Printf.sprintf "%s:%d" t.host t.port) :: headers)
          ~meth ~target ~body fd;
        Http.read_response (Http.Reader.of_fd fd)
      with
      | Ok resp ->
        if not (response_keeps_alive resp) then drop_connection t;
        `Ok resp
      | Error e ->
        drop_connection t;
        `Err (e, reused)
      | exception exn ->
        drop_connection t;
        `Raised (exn, reused))
  in
  let settle = function
    | `Ok resp -> Ok resp
    | `Err (e, _) -> Error e
    | `Raised (exn, _) -> raise exn
  in
  match once () with
  | `Err ((`Eof | `Timeout), true)
  | `Raised (Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _), true) ->
    settle (once ())
  | outcome -> settle outcome

(* ECONNREFUSED is deliberately transient: during worker/server startup
   the listener may not be bound yet, and the retry loop doubles as the
   readiness wait. *)
let transient = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EPIPE | Unix.ETIMEDOUT
  | Unix.EHOSTUNREACH | Unix.ENETUNREACH | Unix.EAGAIN | Unix.EWOULDBLOCK ->
    true
  | _ -> false

(* Full-jitter exponential backoff (delay uniform in [0, base·2^n],
   capped).  A deterministic schedule synchronises retry storms: when a
   coordinator's worker dies, every in-flight client would otherwise
   retry the survivors in lockstep.  The jitter PRNG is self-seeded and
   mutex-protected — it only shapes timing, never results. *)
let backoff_base = 0.05
let backoff_cap = 2.0
let jitter_mutex = Mutex.create ()
let jitter_state = lazy (Random.State.make_self_init ())

let backoff_delay n =
  let ceiling =
    Float.min backoff_cap (backoff_base *. float_of_int (1 lsl min n 16))
  in
  Mutex.lock jitter_mutex;
  let d = Random.State.float (Lazy.force jitter_state) ceiling in
  Mutex.unlock jitter_mutex;
  d

(* When this process is tracing, every outgoing request carries the
   trace id and the innermost open span, so a traced server can tag its
   handler spans with the caller's context.  Untraced processes send
   nothing; servers that don't understand the headers ignore them —
   propagation never changes behaviour. *)
let trace_headers () =
  if not (Repro_obs.Trace.enabled ()) then []
  else
    let base = [ ("X-Trace-Id", Repro_obs.Trace.id ()) ] in
    match Repro_obs.Trace.current_span () with
    | Some s -> ("X-Parent-Span", string_of_int s) :: base
    | None -> base

let request ?(headers = []) t ~meth ~target ~body =
  let headers = headers @ trace_headers () in
  let rec attempt n =
    let retry msg =
      if n < t.retries then begin
        Repro_engine.Telemetry.incr "serve.client_retries";
        Thread.delay (backoff_delay n);
        attempt (n + 1)
      end
      else Error (Connect_failure msg)
    in
    match round_trip t ~headers ~meth ~target ~body with
    | Ok resp -> Ok resp
    | Error (`Timeout | `Eof) -> retry "timed out"
    | Error ((`Bad_request _ | `Too_large _) as e) ->
      Error (Protocol_error (Http.error_to_string e))
    | exception Unix.Unix_error (code, _, _) when transient code ->
      retry (Unix.error_message code)
    | exception Unix.Unix_error (code, fn, _) ->
      Error (Connect_failure (Printf.sprintf "%s: %s" fn (Unix.error_message code)))
    | exception Failure msg -> Error (Connect_failure msg)
  in
  attempt 0

let shutdown t =
  Mutex.lock t.mutex;
  drop_connection t;
  Mutex.unlock t.mutex

let get ?headers t target = request ?headers t ~meth:"GET" ~target ~body:""
let post ?headers t target ~body = request ?headers t ~meth:"POST" ~target ~body
let put ?headers t target ~body = request ?headers t ~meth:"PUT" ~target ~body

let expect_json resp =
  match resp with
  | Error _ as e -> e
  | Ok { Http.status; resp_body; _ } when status <> 200 ->
    Error (Http_error { status; body = resp_body })
  | Ok { Http.resp_body; _ } -> (
    match Json.of_string resp_body with
    | Ok j -> Ok j
    | Error msg -> Error (Protocol_error msg))

let get_json t target = expect_json (get t target)

let post_json t target ~body = expect_json (post t target ~body)

let point_to_json (kvco, ivco) =
  Json.Obj [ ("kvco", Json.Num kvco); ("ivco", Json.Num ivco) ]

let query_points t ~model points =
  let body =
    Json.to_string
      (Json.Obj
         [ ("points",
            Json.Arr (Array.to_list (Array.map point_to_json points))) ])
  in
  match post_json t (Printf.sprintf "/v1/models/%s/query" model) ~body with
  | Error _ as e -> e
  | Ok j -> (
    match Json.member "results" j with
    | Some (Json.Arr items) ->
      if List.length items <> Array.length points then
        Error (Protocol_error "result count does not match the batch")
      else begin
        match
          List.map
            (fun item ->
              match Api.point_eval_of_json item with
              | Ok pe -> pe
              | Error msg -> failwith msg)
            items
        with
        | pes -> Ok (Array.of_list pes)
        | exception Failure msg -> Error (Protocol_error msg)
      end
    | _ -> Error (Protocol_error "missing results array"))

let verify_point t ~model (perf : Repro_spice.Vco_measure.performance) =
  let body =
    Json.to_string
      (Json.Obj
         [
           ("kvco", Json.Num perf.kvco);
           ("ivco", Json.Num perf.ivco);
           ("jvco", Json.Num perf.jvco);
           ("fmin", Json.Num perf.fmin);
           ("fmax", Json.Num perf.fmax);
         ])
  in
  match post_json t (Printf.sprintf "/v1/models/%s/verify" model) ~body with
  | Error _ as e -> e
  | Ok j -> (
    match Json.member "params" j with
    | Some (Json.Obj fields) -> (
      let pair (name, v) =
        match v with
        | Json.Num x -> (name, x)
        | _ -> failwith ("params." ^ name ^ ": expected a number")
      in
      match List.map pair fields with
      | params -> Ok params
      | exception Failure msg -> Error (Protocol_error msg))
    | _ -> Error (Protocol_error "missing params object"))

let wait_ready ?(deadline = 5.) t =
  let stop_at = Unix.gettimeofday () +. deadline in
  let rec poll () =
    match get t "/v1/healthz" with
    | Ok { Http.status = 200; _ } -> true
    | _ ->
      if Unix.gettimeofday () >= stop_at then false
      else begin
        Thread.delay 0.05;
        poll ()
      end
  in
  poll ()
