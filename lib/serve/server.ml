module Telemetry = Repro_engine.Telemetry

type handler = Http.request -> int * (string * string) list * string

type t = {
  handler : handler;
  listener : Unix.file_descr;
  bound_port : int;
  request_timeout : float;
  mutex : Mutex.t;
  cond : Condition.t;
  conns : Unix.file_descr Queue.t;     (* accepted, waiting for a worker *)
  mutable inflight : Unix.file_descr list;  (* being served right now *)
  stopping : bool Atomic.t;
  mutable acceptor : Thread.t option;
  mutable workers : unit Domain.t list;
  mutable drainer : Thread.t option;
}

let port t = t.bound_port

let error_body msg = Json.to_string (Json.Obj [ ("error", Json.Str msg) ])

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let safe_close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let serve_connection t fd =
  Telemetry.incr "serve.connections";
  let reader = Http.Reader.of_fd fd in
  let send ?(headers = []) ~keep_alive status body =
    match Http.write_response ~headers ~keep_alive ~status ~body fd with
    | () -> true
    | exception Unix.Unix_error _ -> false
  in
  let rec loop () =
    match Http.read_request reader with
    | Error `Eof -> ()
    | Error `Timeout -> Telemetry.incr "serve.request_timeouts"
    | Error (`Bad_request msg) ->
      ignore (send ~keep_alive:false 400 (error_body msg))
    | Error (`Too_large msg) ->
      ignore (send ~keep_alive:false 413 (error_body msg))
    | Ok req ->
      let status, headers, body = t.handler req in
      (* a draining server answers the request it already accepted,
         then closes instead of waiting for the next one *)
      let keep_alive = Http.keep_alive req && not (Atomic.get t.stopping) in
      if send ~headers ~keep_alive status body && keep_alive then loop ()
  in
  (try loop () with
  | exn ->
    Telemetry.incr "serve.connection_errors";
    Telemetry.warn ~key:"serve.connection" "connection handler: %s"
      (Printexc.to_string exn));
  safe_close fd

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.conns && not (Atomic.get t.stopping) do
    Condition.wait t.cond t.mutex
  done;
  match Queue.take_opt t.conns with
  | None ->
    (* stopping and nothing queued: this worker is done *)
    Mutex.unlock t.mutex
  | Some fd ->
    t.inflight <- fd :: t.inflight;
    Mutex.unlock t.mutex;
    serve_connection t fd;
    locked t (fun () -> t.inflight <- List.filter (fun f -> f != fd) t.inflight);
    worker_loop t

let rec accept_loop t =
  match Unix.accept ~cloexec:true t.listener with
  | fd, _ ->
    (* bound reads per connection so a stalled client frees its worker *)
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.request_timeout;
    locked t (fun () ->
        Queue.add fd t.conns;
        Condition.signal t.cond);
    accept_loop t
  | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _) ->
    if not (Atomic.get t.stopping) then accept_loop t
  | exception Unix.Unix_error _ ->
    (* listener closed by [stop] — wake every worker for the drain *)
    locked t (fun () -> Condition.broadcast t.cond)

let start_with ?(addr = "127.0.0.1") ?(port = 8190) ?(workers = 2)
    ?(request_timeout = 10.) ~handler () =
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let listener = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match
     Unix.setsockopt listener Unix.SO_REUSEADDR true;
     Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.listen listener 64
   with
  | () -> ()
  | exception exn ->
    safe_close listener;
    raise exn);
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let t =
    {
      handler;
      listener;
      bound_port;
      request_timeout = (if request_timeout <= 0. then 10. else request_timeout);
      mutex = Mutex.create ();
      cond = Condition.create ();
      conns = Queue.create ();
      inflight = [];
      stopping = Atomic.make false;
      acceptor = None;
      workers = [];
      drainer = None;
    }
  in
  let workers = max 1 workers in
  t.workers <-
    List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t.acceptor <- Some (Thread.create (fun () -> accept_loop t) ());
  Telemetry.set "serve.workers" workers;
  t

let start ?addr ?port ?workers ?request_timeout ~api () =
  start_with ?addr ?port ?workers ?request_timeout ~handler:(Api.handle api) ()

let stop ?(drain_timeout = 5.0) t =
  if not (Atomic.exchange t.stopping true) then begin
    (* close alone does not wake a thread blocked in accept(2);
       shutdown makes it return EINVAL immediately *)
    (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    safe_close t.listener;
    locked t (fun () -> Condition.broadcast t.cond);
    (* past the deadline, yank remaining connections out from under
       their workers rather than hang shutdown forever *)
    t.drainer <-
      Some
        (Thread.create
           (fun () ->
             let deadline = Unix.gettimeofday () +. max 0. drain_timeout in
             let busy () =
               locked t (fun () ->
                   t.inflight <> [] || not (Queue.is_empty t.conns))
             in
             while busy () && Unix.gettimeofday () < deadline do
               Thread.delay 0.02
             done;
             if busy () then begin
               Telemetry.incr "serve.forced_closes";
               locked t (fun () ->
                   List.iter
                     (fun fd ->
                       try Unix.shutdown fd Unix.SHUTDOWN_ALL
                       with Unix.Unix_error _ -> ())
                     t.inflight;
                   Queue.iter safe_close t.conns;
                   Queue.clear t.conns)
             end)
           ())
  end

let wait t =
  (* poll instead of blocking in join straight away: a thread stuck in a
     C call never runs OCaml signal handlers, so a main thread that
     joined here directly would never see the SIGTERM that is supposed
     to stop the server.  The delay loop gives the runtime a safepoint
     every tick. *)
  while not (Atomic.get t.stopping) do
    Thread.delay 0.1
  done;
  Option.iter Thread.join t.acceptor;
  List.iter Domain.join t.workers;
  t.workers <- [];
  Option.iter Thread.join t.drainer;
  t.drainer <- None

let install_signal_handlers t =
  let handler _ = stop t in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle handler);
  Sys.set_signal Sys.sigint (Sys.Signal_handle handler)
