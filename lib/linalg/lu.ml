type factorisation = {
  lu : float array; (* packed row-major LU factors *)
  perm : int array; (* row permutation *)
  n : int;
  sign : float; (* permutation parity, for det *)
}

exception Singular of int

(* Singularity detection is relative to each column's pre-elimination
   magnitude: a pivot below [pivot_rel_tol] times the largest original
   entry of its column is numerically indistinguishable from the
   cancellation noise of the elimination, whatever the absolute scale
   of the system.  The absolute floor only matters for columns that are
   exactly (or denormally) zero.  Shared by the dense and sparse
   factorisations so both report [Singular] on the same systems. *)
let pivot_rel_tol = 1e-13
let pivot_abs_floor = 1e-300

let pivot_threshold ~col_max =
  Float.max pivot_abs_floor (pivot_rel_tol *. col_max)

let factorise m =
  let n = Matrix.rows m in
  if Matrix.cols m <> n then invalid_arg "Lu.factorise: matrix not square";
  let lu = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      lu.((i * n) + j) <- Matrix.get m i j
    done
  done;
  (* per-column magnitude of the original matrix, the reference for the
     relative pivot tolerance *)
  let col_max = Array.make n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let v = Float.abs lu.((i * n) + j) in
      if v > col_max.(j) then col_max.(j) <- v
    done
  done;
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  (* hot path: indices are in range by construction, so the elimination
     kernel uses unsafe accesses *)
  for k = 0 to n - 1 do
    (* partial pivot: largest magnitude in column k at or below row k *)
    let piv = ref k in
    let best = ref (Float.abs (Array.unsafe_get lu ((k * n) + k))) in
    for i = k + 1 to n - 1 do
      let v = Float.abs (Array.unsafe_get lu ((i * n) + k)) in
      if v > !best then begin
        best := v;
        piv := i
      end
    done;
    if !best < pivot_threshold ~col_max:col_max.(k) then raise (Singular k);
    if !piv <> k then begin
      let pk = !piv in
      for j = 0 to n - 1 do
        let tmp = Array.unsafe_get lu ((k * n) + j) in
        Array.unsafe_set lu ((k * n) + j) (Array.unsafe_get lu ((pk * n) + j));
        Array.unsafe_set lu ((pk * n) + j) tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(pk);
      perm.(pk) <- tmp;
      sign := -. !sign
    end;
    let pivot = Array.unsafe_get lu ((k * n) + k) in
    for i = k + 1 to n - 1 do
      let factor = Array.unsafe_get lu ((i * n) + k) /. pivot in
      Array.unsafe_set lu ((i * n) + k) factor;
      if factor <> 0.0 then begin
        let row_i = i * n and row_k = k * n in
        for j = k + 1 to n - 1 do
          Array.unsafe_set lu (row_i + j)
            (Array.unsafe_get lu (row_i + j)
            -. (factor *. Array.unsafe_get lu (row_k + j)))
        done
      end
    done
  done;
  { lu; perm; n; sign = !sign }

let solve_factorised f b =
  let n = f.n in
  if Array.length b <> n then invalid_arg "Lu.solve_factorised: size mismatch";
  let x = Array.make n 0.0 in
  let lu = f.lu in
  (* forward: L y = P b *)
  for i = 0 to n - 1 do
    let acc = ref b.(f.perm.(i)) in
    let row = i * n in
    for j = 0 to i - 1 do
      acc := !acc -. (Array.unsafe_get lu (row + j) *. Array.unsafe_get x j)
    done;
    Array.unsafe_set x i !acc
  done;
  (* backward: U x = y *)
  for i = n - 1 downto 0 do
    let acc = ref (Array.unsafe_get x i) in
    let row = i * n in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Array.unsafe_get lu (row + j) *. Array.unsafe_get x j)
    done;
    Array.unsafe_set x i (!acc /. Array.unsafe_get lu (row + i))
  done;
  x

let solve a b = solve_factorised (factorise a) b

let det m =
  match factorise m with
  | exception Singular _ -> 0.0
  | f ->
    let acc = ref f.sign in
    for i = 0 to f.n - 1 do
      acc := !acc *. f.lu.((i * f.n) + i)
    done;
    !acc

let inverse m =
  let n = Matrix.rows m in
  let f = factorise m in
  let inv = Matrix.create n n in
  for j = 0 to n - 1 do
    let e = Array.make n 0.0 in
    e.(j) <- 1.0;
    let col = solve_factorised f e in
    for i = 0 to n - 1 do
      Matrix.set inv i j col.(i)
    done
  done;
  inv

let condition_estimate m =
  match inverse m with
  | exception Singular _ -> infinity
  | inv -> Matrix.norm_inf m *. Matrix.norm_inf inv
