(** Recursive-descent parser: lexed cards to the typed {!Ast.deck}.

    Understands R/C/V/I/M/X element cards, [.param] (with arithmetic
    expressions and [{range lo hi}] templates), [.model] (NMOS/PMOS),
    nested [.subckt]/[.ends] definitions with header parameter defaults,
    and [.end].  All errors are {!Loc.Netlist_error}s pointing at the
    offending token. *)

val deck : ?file:string -> string -> Ast.deck
(** Parse deck text. *)

val deck_of_file : string -> Ast.deck
(** Parse a file ([file] is recorded for error messages).
    @raise Sys_error when the file cannot be read. *)

val expr_of_tokens :
  ?file:string -> Lexer.token list -> Ast.expr
(** Parse one complete arithmetic expression from already-lexed tokens
    (exposed for the tokenizer/expression property tests). *)
