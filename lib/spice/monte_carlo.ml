module Process = Repro_circuit.Process
module Prng = Repro_util.Prng
module Stats = Repro_util.Stats

type 'a trial = Repro_circuit.Netlist.t -> ('a, string) result

type 'a run_result = {
  samples : 'a array;
  failures : int;
  seeds_used : int;
}

let run ?(spec = Process.default) ~n ~prng net trial =
  if n <= 0 then invalid_arg "Monte_carlo.run: n must be positive";
  let ok = ref [] and failures = ref 0 in
  for _ = 1 to n do
    let stream = Prng.split prng in
    let perturbed = Process.sample spec stream net in
    match trial perturbed with
    | Ok x -> ok := x :: !ok
    | Error _ -> incr failures
  done;
  { samples = Array.of_list (List.rev !ok); failures = !failures; seeds_used = n }

type spread = {
  nominal : float;
  mc_mean : float;
  mc_std : float;
  rel_spread : float;
  n_samples : int;
}

let spread_of_samples ~nominal samples =
  let mc_mean = Stats.mean samples in
  let mc_std = Stats.stddev samples in
  {
    nominal;
    mc_mean;
    mc_std;
    rel_spread = (if mc_mean = 0.0 then 0.0 else mc_std /. Float.abs mc_mean);
    n_samples = Array.length samples;
  }

let pp_spread ppf s =
  Format.fprintf ppf "nominal=%g mc=%g±%g (∆=%.2f%%, n=%d)" s.nominal s.mc_mean
    s.mc_std (100.0 *. s.rel_spread) s.n_samples
