module Prng = Repro_util.Prng

let random_search ~evaluations problem prng =
  if evaluations <= 0 then invalid_arg "Baselines.random_search: evaluations";
  Array.init evaluations (fun _ ->
      let x = Problem.random_point problem prng in
      { Nsga2.x; evaluation = problem.Problem.evaluate x })

type ws_options = {
  population : int;
  generations : int;
  mutation_sigma : float;
  elite : int;
}

let default_ws_options =
  { population = 40; generations = 40; mutation_sigma = 0.1; elite = 4 }

let scalarise ~weights ~normalise (e : Problem.evaluation) =
  if Problem.feasible e then begin
    let acc = ref 0.0 in
    Array.iteri
      (fun i w ->
        let n = if normalise.(i) <> 0.0 then Float.abs normalise.(i) else 1.0 in
        acc := !acc +. (w *. e.objectives.(i) /. n))
      weights;
    !acc
  end
  else 1e12 *. (1.0 +. e.constraint_violation)

let weighted_sum_ga ?(options = default_ws_options) ~weights ~normalise problem
    prng =
  let nv = Problem.n_vars problem in
  let eval x = { Nsga2.x; evaluation = problem.Problem.evaluate x } in
  let score ind = scalarise ~weights ~normalise ind.Nsga2.evaluation in
  let mutate x =
    Array.mapi
      (fun i v ->
        let lo, hi = problem.Problem.bounds.(i) in
        let step = options.mutation_sigma *. (hi -. lo) in
        Repro_util.Floatx.clamp ~lo ~hi (Prng.gaussian prng ~mean:v ~sigma:step))
      x
  in
  let blend a b =
    Array.init nv (fun i ->
        let t = Prng.uniform prng in
        Repro_util.Floatx.lerp a.(i) b.(i) t)
  in
  let pop =
    ref
      (Array.init options.population (fun _ ->
           eval (Problem.random_point problem prng)))
  in
  let by_score p = Array.sort (fun a b -> compare (score a) (score b)) p in
  by_score !pop;
  for _ = 1 to options.generations do
    let parents = Array.sub !pop 0 (Stdlib.max options.elite 2) in
    let children =
      Array.init options.population (fun i ->
          if i < options.elite then !pop.(i)
          else begin
            let a = Prng.pick prng parents and b = Prng.pick prng parents in
            eval (mutate (blend a.Nsga2.x b.Nsga2.x))
          end)
    in
    by_score children;
    pop := children
  done;
  !pop.(0)

let weighted_sum_front ?(options = default_ws_options) ~n_weights ~normalise
    problem prng =
  if n_weights <= 0 then invalid_arg "Baselines.weighted_sum_front: n_weights";
  let n_obj = Problem.n_objectives problem in
  Array.init n_weights (fun _ ->
      (* random simplex weights *)
      let raw = Array.init n_obj (fun _ -> -.log (1.0 -. Prng.uniform prng)) in
      let total = Array.fold_left ( +. ) 0.0 raw in
      let weights = Array.map (fun v -> v /. total) raw in
      weighted_sum_ga ~options ~weights ~normalise problem prng)
