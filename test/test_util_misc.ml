(* Floatx and Si tests *)
module Floatx = Repro_util.Floatx
module Si = Repro_util.Si

let checkf msg = Alcotest.(check (float 1e-12)) msg

let test_clamp () =
  checkf "inside" 0.5 (Floatx.clamp ~lo:0.0 ~hi:1.0 0.5);
  checkf "below" 0.0 (Floatx.clamp ~lo:0.0 ~hi:1.0 (-3.0));
  checkf "above" 1.0 (Floatx.clamp ~lo:0.0 ~hi:1.0 9.0);
  checkf "at edge" 1.0 (Floatx.clamp ~lo:0.0 ~hi:1.0 1.0)

let test_close () =
  Alcotest.(check bool) "equal" true (Floatx.close 1.0 1.0);
  Alcotest.(check bool) "tiny rel diff" true (Floatx.close 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "big diff" false (Floatx.close 1.0 1.1);
  Alcotest.(check bool) "custom tolerance" true
    (Floatx.close ~rtol:0.2 1.0 1.1)

let test_linspace () =
  let xs = Floatx.linspace 0.0 1.0 5 in
  Alcotest.(check int) "count" 5 (Array.length xs);
  checkf "first" 0.0 xs.(0);
  checkf "last" 1.0 xs.(4);
  checkf "step" 0.25 xs.(1);
  Alcotest.check_raises "too few"
    (Invalid_argument "Floatx.linspace: need at least 2 points") (fun () ->
      ignore (Floatx.linspace 0.0 1.0 1))

let test_logspace () =
  let xs = Floatx.logspace 1.0 100.0 3 in
  checkf "first" 1.0 xs.(0);
  Alcotest.(check (float 1e-9)) "middle" 10.0 xs.(1);
  Alcotest.(check (float 1e-9)) "last" 100.0 xs.(2);
  Alcotest.check_raises "negative bound"
    (Invalid_argument "Floatx.logspace: bounds must be positive") (fun () ->
      ignore (Floatx.logspace (-1.0) 1.0 3))

let test_lerp () =
  checkf "mid" 1.5 (Floatx.lerp 1.0 2.0 0.5);
  checkf "start" 1.0 (Floatx.lerp 1.0 2.0 0.0);
  checkf "end" 2.0 (Floatx.lerp 1.0 2.0 1.0)

let test_kahan_sum () =
  let xs = Array.make 10_000 0.1 in
  Alcotest.(check (float 1e-9)) "compensated" 1000.0 (Floatx.sum xs)

let test_si_parse () =
  checkf "plain" 42.0 (Si.parse "42");
  checkf "pico" 2.1e-12 (Si.parse "2.1p");
  checkf "kilo" 3.8e3 (Si.parse "3.8k");
  checkf "micro" 0.12e-6 (Si.parse "0.12u");
  checkf "meg" 5e6 (Si.parse "5meg");
  checkf "nano" 1.5e-9 (Si.parse "1.5n");
  checkf "femto" 2e-15 (Si.parse "2f");
  checkf "giga" 1.2e9 (Si.parse "1.2g");
  checkf "tera" 3e12 (Si.parse "3t");
  checkf "milli" 15e-3 (Si.parse "15m");
  checkf "exponent" 1.0e-12 (Si.parse "1.0e-12");
  checkf "case insensitive" 2e3 (Si.parse "2K");
  checkf "negative" (-4.7e-9) (Si.parse "-4.7n")

let test_si_parse_bad () =
  Alcotest.(check (option (float 0.0))) "garbage" None (Si.parse_opt "abc");
  Alcotest.(check (option (float 0.0))) "empty" None (Si.parse_opt "");
  Alcotest.(check bool) "parse raises" true
    (try ignore (Si.parse "xyz"); false with Failure _ -> true)

let test_si_format () =
  Alcotest.(check string) "pico" "2.1p" (Si.format 2.1e-12);
  Alcotest.(check string) "kilo" "2k" (Si.format 2e3);
  Alcotest.(check string) "zero" "0" (Si.format 0.0);
  Alcotest.(check string) "unit suffix" "800MHz" (Si.format_unit 800e6 "Hz")

let test_si_roundtrip () =
  List.iter
    (fun x ->
      let y = Si.parse (Si.format x) in
      if Float.abs (y -. x) > 1e-3 *. Float.abs x then
        Alcotest.failf "roundtrip %g -> %s -> %g" x (Si.format x) y)
    [ 1.0; 2.1e-12; 3.8e3; 0.12e-6; 5e6; 100e-6; 1.2e9; -2.5e-3 ]

(* the strict grammar: a valid value followed by anything is garbage *)
let test_si_parse_strict () =
  List.iter
    (fun s ->
      Alcotest.(check (option (float 0.0)))
        (Printf.sprintf "reject %S" s)
        None (Si.parse_opt s))
    [ "10ux"; "2.2uF"; "5megx"; "3kk"; "1e1e1"; "1.5nF"; "4.2qq"; "7 k";
      "."; "e3"; "+"; "-"; "1e"; "1e+"; "--1"; "10u x" ];
  (* while suffix and exponent still compose *)
  checkf "exponent then suffix" 1.5e-6 (Si.parse "1.5e0u");
  checkf "leading dot" 0.5e-3 (Si.parse ".5m");
  checkf "trailing dot" 1.0 (Si.parse "1.");
  checkf "explicit plus" 2e3 (Si.parse "+2k")

let prop_si_roundtrip =
  QCheck.Test.make ~name:"SI format/parse roundtrip" ~count:500
    QCheck.(float_range 1e-14 1e13)
    (fun x ->
      let y = Si.parse (Si.format x) in
      Float.abs (y -. x) <= 1e-3 *. Float.abs x)

let prop_si_strict_trailing =
  (* appending a non-suffix character to any formatted value must turn
     it into a parse failure, not silently drop the tail *)
  QCheck.Test.make ~name:"SI parse rejects trailing garbage" ~count:500
    QCheck.(pair (float_range 1e-14 1e13) (oneofl [ "x"; "F"; "z"; " 1"; "k9"; "~" ]))
    (fun (x, tail) -> Si.parse_opt (Si.format x ^ tail) = None)

let prop_clamp_idempotent =
  QCheck.Test.make ~name:"clamp idempotent" ~count:500
    QCheck.(triple (float_range (-10.) 10.) (float_range (-10.) 10.) (float_range (-100.) 100.))
    (fun (a, b, x) ->
      let lo = Float.min a b and hi = Float.max a b in
      let once = Floatx.clamp ~lo ~hi x in
      Floatx.clamp ~lo ~hi once = once && once >= lo && once <= hi)

let suite =
  [
    Alcotest.test_case "clamp" `Quick test_clamp;
    Alcotest.test_case "close" `Quick test_close;
    Alcotest.test_case "linspace" `Quick test_linspace;
    Alcotest.test_case "logspace" `Quick test_logspace;
    Alcotest.test_case "lerp" `Quick test_lerp;
    Alcotest.test_case "kahan sum" `Quick test_kahan_sum;
    Alcotest.test_case "si parse" `Quick test_si_parse;
    Alcotest.test_case "si parse bad" `Quick test_si_parse_bad;
    Alcotest.test_case "si parse strict" `Quick test_si_parse_strict;
    Alcotest.test_case "si format" `Quick test_si_format;
    Alcotest.test_case "si roundtrip" `Quick test_si_roundtrip;
    QCheck_alcotest.to_alcotest prop_si_roundtrip;
    QCheck_alcotest.to_alcotest prop_si_strict_trailing;
    QCheck_alcotest.to_alcotest prop_clamp_idempotent;
  ]
