(** Typed Chrome-trace events and span reconstruction.

    This is the analysis-side twin of {!Repro_obs.Trace}: the tracer
    emits flat begin/end/instant/counter events; this module pairs the
    begin/end events back into per-(pid, tid) span trees so self-time,
    GC attribution and utilization can be computed.  JSON parsing stays
    out of this library — callers (the CLI) decode trace files into
    [t] values and hand them over. *)

type t = {
  name : string;
  ph : char;  (** 'B' | 'E' | 'i' | 'C' | 'M' *)
  ts : float;  (** microseconds on the owning process's timeline *)
  pid : int;
  tid : int;
  seq : int;
  args : (string * string) list;
}

type span = {
  name : string;
  pid : int;
  tid : int;
  id : int;  (** seq of the begin event — what remote children reference *)
  t0 : float;
  mutable t1 : float;
  args : (string * string) list;  (** begin-event args *)
  mutable gc : (string * string) list;  (** end-event args (gc.* deltas) *)
  depth : int;
  mutable children : span list;  (** chronological *)
}

val dur : span -> float
(** Duration in microseconds. *)

val arg : string -> (string * string) list -> string option

val gc_field : span -> string -> float
(** Numeric gc.* delta from the span's end-event args (0 when absent). *)

val spans : t list -> span list
(** Root spans (children linked, chronological), reconstructed with a
    per-(pid, tid) stack over events ordered by (ts, seq).  Stray end
    events and spans left open (no matching end) are dropped. *)

val flatten : span list -> span list
(** Preorder walk of a span forest. *)

val unbalanced : t list -> int
(** Number of begin/end events with no partner (0 for a well-formed
    trace). *)
