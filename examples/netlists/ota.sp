* Two-stage Miller OTA testbench — demonstrates .subckt with ports,
* per-instance parameter overrides and .param arithmetic.  Fully
* specified (no {range} templates): parse it with
*   hieropt simulate examples/netlists/ota.sp --probe out
*
* The subcircuit takes its device dimensions as header defaults; the
* instantiation below overrides the second-stage width.

* global bias / geometry parameters
.param vdd_val = 1.2
.param vcm = {vdd_val * 0.58}
.param lmin = 0.5u

.subckt ota inp inn out vdd w_diff=20u w_load=10u w_p2=40u l={lmin} cc=1.5p
* bias chain: Ibias into the diode-connected m8, mirrored by the tail
* m5 and the second-stage sink m7
Ibias vdd nbias DC 50u
m8 nbias nbias 0 nmos_012 W={w_diff / 2} L={l}
m5 ntail nbias 0 nmos_012 W={w_diff} L={l}
* first stage: NMOS pair with PMOS mirror load
m1 n1 inp ntail nmos_012 W={w_diff} L={l}
m2 n2 inn ntail nmos_012 W={w_diff} L={l}
m3 n1 n1 vdd pmos_012 W={w_load} L={l}
m4 n2 n1 vdd pmos_012 W={w_load} L={l}
* second stage with Miller compensation
m6 out n2 vdd pmos_012 W={w_p2} L={l}
m7 out nbias 0 nmos_012 W={2 * w_diff} L={l}
Cc n2 out {cc}
.ends ota

* supplies and common-mode drive
Vdd vdd 0 DC {vdd_val}
Vinp inp 0 DC {vcm}
Vinn inn 0 DC {vcm}

* the amplifier under test, second stage upsized per-instance
Xamp inp inn out vdd ota w_p2=60u
Cl out 0 1p

.end
