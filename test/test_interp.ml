module Spline = Repro_interp.Spline
module Table1d = Repro_interp.Table1d
module Table_nd = Repro_interp.Table_nd

let checkf msg = Alcotest.(check (float 1e-9)) msg

let xs5 = [| 0.0; 1.0; 2.0; 3.0; 4.0 |]
let quad_ys = Array.map (fun x -> (x *. x) +. 1.0) xs5

let test_spline_interpolates_knots () =
  List.iter
    (fun method_ ->
      let s = Spline.build ~method_ xs5 quad_ys in
      Array.iteri
        (fun i x -> checkf "knot value" quad_ys.(i) (Spline.eval s x))
        xs5)
    [ Spline.Linear; Spline.Quadratic; Spline.Cubic ]

let test_linear_midpoints () =
  let s = Spline.build ~method_:Spline.Linear [| 0.0; 2.0 |] [| 0.0; 4.0 |] in
  checkf "midpoint" 2.0 (Spline.eval s 1.0);
  checkf "slope" 2.0 (Spline.eval_deriv s 1.0)

let test_quadratic_exact_on_parabola () =
  let s = Spline.build ~method_:Spline.Quadratic xs5 quad_ys in
  List.iter
    (fun x ->
      Alcotest.(check (float 1e-9)) "parabola reproduced" ((x *. x) +. 1.0)
        (Spline.eval s x))
    [ 0.5; 1.5; 2.7; 3.9 ]

let test_cubic_smoothness () =
  (* natural cubic spline of sin: C1 continuity at interior knots *)
  let xs = Repro_util.Floatx.linspace 0.0 6.28 15 in
  let ys = Array.map sin xs in
  let s = Spline.build ~method_:Spline.Cubic xs ys in
  for i = 1 to 13 do
    let h = 1e-7 in
    let dl = Spline.eval_deriv s (xs.(i) -. h) in
    let dr = Spline.eval_deriv s (xs.(i) +. h) in
    if Float.abs (dl -. dr) > 1e-4 then
      Alcotest.failf "derivative jump at knot %d: %g vs %g" i dl dr
  done

let test_cubic_accuracy_on_sin () =
  let xs = Repro_util.Floatx.linspace 0.0 6.28 25 in
  let ys = Array.map sin xs in
  let s = Spline.build ~method_:Spline.Cubic xs ys in
  List.iter
    (fun x ->
      if Float.abs (Spline.eval s x -. sin x) > 1e-3 then
        Alcotest.failf "cubic error at %g too large" x)
    [ 0.3; 1.1; 2.2; 3.7; 5.0; 6.0 ]

let test_spline_two_points () =
  (* every method degrades to the line through 2 points *)
  List.iter
    (fun method_ ->
      let s = Spline.build ~method_ [| 0.0; 1.0 |] [| 3.0; 5.0 |] in
      checkf "two-point line" 4.0 (Spline.eval s 0.5))
    [ Spline.Linear; Spline.Quadratic; Spline.Cubic ]

let test_spline_invalid () =
  Alcotest.(check bool) "non-increasing" true
    (try ignore (Spline.build [| 0.0; 0.0 |] [| 1.0; 2.0 |]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "length mismatch" true
    (try ignore (Spline.build [| 0.0; 1.0 |] [| 1.0 |]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "single point" true
    (try ignore (Spline.build [| 0.0 |] [| 1.0 |]); false
     with Invalid_argument _ -> true)

let test_spline_coefficients_eq3 () =
  (* the per-segment (a,b,c,d) of equation (3) must reproduce eval *)
  let s = Spline.build ~method_:Spline.Cubic xs5 quad_ys in
  let coeffs = Spline.coefficients s in
  let knots = Spline.knots s in
  Array.iteri
    (fun i (a, b, c, d) ->
      let x = knots.(i) +. 0.4 in
      let u = 0.4 in
      let direct = (a *. u *. u *. u) +. (b *. u *. u) +. (c *. u) +. d in
      checkf "eq(3) coefficients" (Spline.eval s x) direct)
    coeffs

let test_control_strings () =
  Alcotest.(check bool) "3E" true
    (Table1d.parse_control "3E" = (Spline.Cubic, Table1d.Error));
  Alcotest.(check bool) "1C" true
    (Table1d.parse_control "1C" = (Spline.Linear, Table1d.Clamp));
  Alcotest.(check bool) "2L" true
    (Table1d.parse_control "2L" = (Spline.Quadratic, Table1d.Extend));
  Alcotest.(check bool) "default letter" true
    (Table1d.parse_control "3" = (Spline.Cubic, Table1d.Error));
  Alcotest.(check bool) "lowercase ok" true
    (Table1d.parse_control "3e" = (Spline.Cubic, Table1d.Error));
  Alcotest.(check bool) "bad digit" true
    (try ignore (Table1d.parse_control "4E"); false with Failure _ -> true);
  Alcotest.(check bool) "bad letter" true
    (try ignore (Table1d.parse_control "3X"); false with Failure _ -> true)

let test_table1d_error_mode () =
  let t = Table1d.build ~control:"3E" xs5 quad_ys in
  checkf "inside" 5.0 (Table1d.eval t 2.0);
  Alcotest.(check bool) "outside raises" true
    (try ignore (Table1d.eval t 5.0); false with Table1d.Out_of_range _ -> true);
  checkf "clamped query" 17.0 (Table1d.eval_clamped t 9.0)

let test_table1d_clamp_mode () =
  let t = Table1d.build ~control:"1C" xs5 quad_ys in
  checkf "clamped high" 17.0 (Table1d.eval t 100.0);
  checkf "clamped low" 1.0 (Table1d.eval t (-5.0))

let test_table1d_extend_mode () =
  let t = Table1d.build ~control:"1L" [| 0.0; 1.0 |] [| 0.0; 2.0 |] in
  checkf "linear extension" 4.0 (Table1d.eval t 2.0);
  checkf "linear extension low" (-2.0) (Table1d.eval t (-1.0))

let test_table1d_unsorted_dedup () =
  (* unsorted input with duplicate abscissae: sorted + averaged *)
  let t =
    Table1d.build ~control:"1E" [| 2.0; 0.0; 1.0; 1.0 |] [| 4.0; 0.0; 1.0; 3.0 |]
  in
  Alcotest.(check int) "dedup size" 3 (Table1d.size t);
  checkf "averaged duplicate" 2.0 (Table1d.eval t 1.0);
  let lo, hi = Table1d.domain t in
  checkf "domain lo" 0.0 lo;
  checkf "domain hi" 2.0 hi

let test_table1d_control_string_roundtrip () =
  let t = Table1d.build ~control:"2C" xs5 quad_ys in
  Alcotest.(check string) "control string" "2C" (Table1d.control_string t)

let test_table_nd_nearest () =
  let pts = [| [| 0.0; 0.0 |]; [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  let t = Table_nd.build ~scheme:Table_nd.Nearest pts [| 1.0; 2.0; 3.0 |] in
  checkf "nearest corner" 2.0 (Table_nd.eval t [| 0.9; 0.1 |]);
  checkf "exact point" 3.0 (Table_nd.eval t [| 0.0; 1.0 |])

let test_table_nd_idw_exact_hits () =
  let pts = [| [| 0.0 |]; [| 1.0 |]; [| 2.0 |] |] in
  let t = Table_nd.build pts [| 5.0; 7.0; 9.0 |] in
  checkf "exact sample" 7.0 (Table_nd.eval t [| 1.0 |]);
  let v = Table_nd.eval t [| 0.5 |] in
  Alcotest.(check bool) "IDW between neighbours" true (v > 5.0 && v < 7.5)

let test_table_nd_within_hull_bounds () =
  let prng = Repro_util.Prng.create 5 in
  let pts =
    Array.init 20 (fun _ ->
        [| Repro_util.Prng.uniform prng; Repro_util.Prng.uniform prng |])
  in
  let vals = Array.map (fun p -> p.(0) +. p.(1)) pts in
  let t = Table_nd.build pts vals in
  let lo, hi = Repro_util.Stats.min_max vals in
  for _ = 1 to 50 do
    let q = [| Repro_util.Prng.uniform prng; Repro_util.Prng.uniform prng |] in
    let v = Table_nd.eval t q in
    (* IDW is a convex combination: bounded by sample extremes *)
    if v < lo -. 1e-9 || v > hi +. 1e-9 then
      Alcotest.failf "IDW out of sample range: %g not in [%g, %g]" v lo hi
  done

let test_table_nd_rbf_exact () =
  (* RBF interpolation reproduces the samples exactly *)
  let prng = Repro_util.Prng.create 21 in
  let pts =
    Array.init 15 (fun _ ->
        [| Repro_util.Prng.uniform prng; Repro_util.Prng.uniform prng |])
  in
  let vals = Array.map (fun p -> sin (3.0 *. p.(0)) +. p.(1)) pts in
  List.iter
    (fun kernel ->
      let t = Table_nd.build ~scheme:(Table_nd.Rbf kernel) pts vals in
      Array.iteri
        (fun i p ->
          let v = Table_nd.eval t p in
          if Float.abs (v -. vals.(i)) > 1e-4 then
            Alcotest.failf "RBF misses sample %d: %g vs %g" i v vals.(i))
        pts)
    [ Table_nd.Thin_plate; Table_nd.Gaussian 2.0 ]

let test_table_nd_rbf_smoother_than_idw () =
  (* on a smooth function, RBF beats IDW between samples *)
  let f p = sin (4.0 *. p.(0)) in
  let pts = Array.init 12 (fun i -> [| float_of_int i /. 11.0 |]) in
  let vals = Array.map f pts in
  let rbf = Table_nd.build ~scheme:(Table_nd.Rbf Table_nd.Thin_plate) pts vals in
  let idw = Table_nd.build pts vals in
  let err t =
    let acc = ref 0.0 in
    for k = 0 to 50 do
      let q = [| (float_of_int k +. 0.5) /. 51.0 |] in
      acc := !acc +. Float.abs (Table_nd.eval t q -. f q)
    done;
    !acc
  in
  Alcotest.(check bool) "RBF more accurate than IDW" true (err rbf < err idw)

let test_table_nd_validation () =
  Alcotest.(check bool) "empty" true
    (try ignore (Table_nd.build [||] [||]); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "ragged" true
    (try
       ignore (Table_nd.build [| [| 1.0 |]; [| 1.0; 2.0 |] |] [| 1.0; 2.0 |]);
       false
     with Invalid_argument _ -> true);
  let t = Table_nd.build [| [| 0.0; 0.0 |] |] [| 1.0 |] in
  Alcotest.(check bool) "dim mismatch query" true
    (try ignore (Table_nd.eval t [| 1.0 |]); false with Invalid_argument _ -> true)

let prop_spline_hits_knots =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 12 in
      let* ys = array_size (return n) (float_range (-100.0) 100.0) in
      return ys)
  in
  QCheck.Test.make ~name:"cubic spline interpolates all knots" ~count:200
    (QCheck.make gen) (fun ys ->
      let xs = Array.init (Array.length ys) float_of_int in
      let s = Spline.build ~method_:Spline.Cubic xs ys in
      Array.for_all2
        (fun x y -> Float.abs (Spline.eval s x -. y) <= 1e-7 *. (1.0 +. Float.abs y))
        xs ys)

let prop_table1d_clamped_within_range =
  QCheck.Test.make ~name:"clamped eval stays within value envelope of knots"
    ~count:200
    QCheck.(pair (array_of_size (QCheck.Gen.int_range 3 10) (float_range (-10.0) 10.0))
              (float_range (-100.0) 100.0))
    (fun (ys, q) ->
      let xs = Array.init (Array.length ys) float_of_int in
      let t = Table1d.build ~control:"1C" xs ys in
      let lo, hi = Repro_util.Stats.min_max ys in
      let v = Table1d.eval t q in
      (* linear interpolation between knots cannot overshoot *)
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let suite =
  [
    Alcotest.test_case "splines interpolate knots" `Quick test_spline_interpolates_knots;
    Alcotest.test_case "linear midpoints" `Quick test_linear_midpoints;
    Alcotest.test_case "quadratic exact on parabola" `Quick test_quadratic_exact_on_parabola;
    Alcotest.test_case "cubic C1 smoothness" `Quick test_cubic_smoothness;
    Alcotest.test_case "cubic accuracy on sin" `Quick test_cubic_accuracy_on_sin;
    Alcotest.test_case "two-point degradation" `Quick test_spline_two_points;
    Alcotest.test_case "spline invalid input" `Quick test_spline_invalid;
    Alcotest.test_case "equation (3) coefficients" `Quick test_spline_coefficients_eq3;
    Alcotest.test_case "control strings" `Quick test_control_strings;
    Alcotest.test_case "table1d 3E error mode" `Quick test_table1d_error_mode;
    Alcotest.test_case "table1d clamp mode" `Quick test_table1d_clamp_mode;
    Alcotest.test_case "table1d extend mode" `Quick test_table1d_extend_mode;
    Alcotest.test_case "table1d unsorted dedup" `Quick test_table1d_unsorted_dedup;
    Alcotest.test_case "table1d control roundtrip" `Quick test_table1d_control_string_roundtrip;
    Alcotest.test_case "table_nd nearest" `Quick test_table_nd_nearest;
    Alcotest.test_case "table_nd idw exact hits" `Quick test_table_nd_idw_exact_hits;
    Alcotest.test_case "table_nd convexity bound" `Quick test_table_nd_within_hull_bounds;
    Alcotest.test_case "table_nd rbf exact" `Quick test_table_nd_rbf_exact;
    Alcotest.test_case "table_nd rbf vs idw" `Quick test_table_nd_rbf_smoother_than_idw;
    Alcotest.test_case "table_nd validation" `Quick test_table_nd_validation;
    QCheck_alcotest.to_alcotest prop_spline_hits_knots;
    QCheck_alcotest.to_alcotest prop_table1d_clamped_within_range;
  ]
