(** Closed- and open-loop load generator for the model server, used by
    the saturation bench and the CLI [loadgen] subcommand.

    [Closed] mode runs [connections] keep-alive connections
    back-to-back: a new request fires the moment the previous response
    lands — the classic saturation probe.  [Open_target qps] fires on a
    fixed schedule at the target rate (split evenly across
    connections, phase-staggered) and measures latency from the
    {e scheduled} send slot, so server-side queueing is charged to the
    server rather than hidden by coordinated omission.

    The first [warmup] seconds are excluded from the recorded window
    (model loads, cache warmup); latencies go through
    {!Repro_obs.Histogram} with fine sub-millisecond buckets.
    Non-200s and transport failures count as [errors] and are never
    retried. *)

type mode = Closed | Open_target of float  (** target qps *)

type result = {
  mode : string;
  connections : int;
  window : float;  (** measured seconds (excludes warmup) *)
  requests : int;  (** successful requests in the window *)
  errors : int;
  qps : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

val run :
  ?mode:mode ->          (* default Closed *)
  ?connections:int ->    (* default 4, min 1 *)
  ?duration:float ->     (* measured window, seconds, default 2. *)
  ?warmup:float ->       (* unrecorded lead-in, seconds, default 0.25 *)
  ?host:string ->        (* default "127.0.0.1" *)
  port:int ->
  target:string ->       (* request target, e.g. /v1/models/default/query *)
  body:string ->         (* POST body sent on every request *)
  unit ->
  result
(** Blocks for [warmup + duration] (closed mode; open mode runs the
    schedule to its end) and returns the aggregated result. *)

val pp : out_channel -> result -> unit
(** One human-readable summary line (no trailing newline). *)
