(* The circuit-simulation substrate on its own: parse a SPICE-like deck,
   solve its operating point, run a transient and take measurements —
   the workflow of any analogue designer, minus Cadence.

   Run with: dune exec examples/spice_playground.exe *)

module C = Repro_circuit
module S = Repro_spice

let deck =
  {|* RC band-limited inverter driver
.model fastn NMOS vth0=0.33 kp=380u
.model fastp PMOS vth0=0.30 kp=130u
Vdd vdd 0 1.2
Vin in 0 PULSE(0 1.2 0.2n 50p 50p 2n 4n)
Rd in ing 500
Cg ing 0 20f
mp out ing vdd fastp W=8u L=0.12u
mn out ing 0 fastn W=4u L=0.12u
Cl out 0 50f
.end
|}

let () =
  Format.printf "deck:@.%s@." deck;
  let net = Repro_netlist.Elab.netlist_of_string deck in
  let cm = S.Mna.compile net in
  (* DC operating point with the input low *)
  let dc = S.Dcop.solve cm in
  Format.printf "DC operating point (%s, %d Newton iterations):@."
    dc.S.Dcop.strategy dc.S.Dcop.iterations;
  List.iter
    (fun node ->
      Format.printf "  v(%s) = %.4f V@." node (S.Dcop.node_voltage cm dc node))
    [ "in"; "ing"; "out" ];
  (* transient over a few input periods *)
  let res = S.Transient.run cm (S.Transient.default_options ~t_stop:12e-9 ~dt:10e-12) in
  let vout = S.Transient.node_wave res "out" in
  let idd = S.Transient.source_current_wave res "Vdd" in
  Format.printf "@.transient (12 ns, %d points):@." (Array.length (S.Transient.times res));
  Format.printf "  output swing: %.3f V peak-to-peak@." (S.Waveform.peak_to_peak vout);
  (match S.Waveform.frequency vout ~level:0.6 with
  | Some f -> Format.printf "  output frequency: %s@." (Repro_util.Si.format_unit f "Hz")
  | None -> Format.printf "  output frequency: (not periodic)@.");
  Format.printf "  average supply current: %.3f mA@."
    (-1e3 *. S.Waveform.mean idd);
  Format.printf "  propagation edges (rising crossings at 0.6 V): %d@."
    (Array.length
       (S.Waveform.crossings ~direction:S.Waveform.Rising vout ~level:0.6));
  (* corner analysis: how do the process corners move the delay? *)
  Format.printf "@.corner analysis (50%% crossing of the first falling output edge):@.";
  List.iter
    (fun corner ->
      let cnet = C.Process.corner corner net in
      let ccm = S.Mna.compile cnet in
      let cres =
        S.Transient.run ccm (S.Transient.default_options ~t_stop:4e-9 ~dt:10e-12)
      in
      let w = S.Transient.node_wave cres "out" in
      let falls = S.Waveform.crossings ~direction:S.Waveform.Falling w ~level:0.6 in
      match Array.length falls with
      | 0 -> Format.printf "  %s: no edge@." (C.Process.corner_name corner)
      | _ ->
        Format.printf "  %s: t_fall = %.1f ps@."
          (C.Process.corner_name corner)
          (falls.(0) *. 1e12))
    [ C.Process.Tt; C.Process.Ss; C.Process.Ff; C.Process.Sf; C.Process.Fs ]
