(** Monte-Carlo analysis over process variation — the paper's §3.3 /
    §4.3 step: run N perturbed-netlist trials of a measurement and report
    per-performance spreads. *)

type 'a trial = Repro_circuit.Netlist.t -> ('a, string) result
(** A measurement over one (already perturbed) netlist instance. *)

type 'a run_result = {
  samples : 'a array;      (** successful trials *)
  failures : int;          (** trials whose measurement failed *)
  seeds_used : int;        (** total trials attempted *)
}

val run :
  ?spec:Repro_circuit.Process.spec ->
  n:int ->
  prng:Repro_util.Prng.t ->
  Repro_circuit.Netlist.t ->
  'a trial ->
  'a run_result
(** [run ~n ~prng net trial] draws [n] process instances of [net] (each
    from an independent PRNG split) and collects the successful
    measurements. *)

type spread = {
  nominal : float;      (** measurement of the unperturbed netlist *)
  mc_mean : float;
  mc_std : float;
  rel_spread : float;   (** mc_std / |mc_mean| — the paper's ∆ columns *)
  n_samples : int;
}

val spread_of_samples : nominal:float -> float array -> spread
(** @raise Invalid_argument on an empty sample array. *)

val pp_spread : Format.formatter -> spread -> unit
