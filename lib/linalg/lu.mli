(** LU decomposition with partial pivoting, the linear kernel of the
    circuit simulator's Newton iterations. *)

type factorisation

exception Singular of int
(** Raised when a pivot column [i] has no usable pivot (matrix is
    numerically singular). *)

val pivot_threshold : col_max:float -> float
(** Smallest acceptable pivot magnitude for a column whose largest
    pre-elimination entry is [col_max]: relative to the column's own
    scale (so badly scaled but well-conditioned systems still solve,
    and scaled-down singular systems no longer slip through) with an
    absolute floor for exactly-zero columns.  Shared by the dense and
    sparse factorisations. *)

val factorise : Matrix.t -> factorisation
(** In-place-style Doolittle factorisation of a square matrix (the input is
    copied first). @raise Singular when no pivot exceeds the tolerance. *)

val solve_factorised : factorisation -> Vec.t -> Vec.t
(** Forward/back substitution against an existing factorisation. *)

val solve : Matrix.t -> Vec.t -> Vec.t
(** [solve a b] solves [a x = b]. @raise Singular on singular systems. *)

val det : Matrix.t -> float
(** Determinant via the factorisation; 0.0 for singular matrices. *)

val inverse : Matrix.t -> Matrix.t
(** Explicit inverse (tests and small analyses only). *)

val condition_estimate : Matrix.t -> float
(** Cheap condition estimate: ||A||_inf * ||A^-1||_inf. Returns [infinity]
    for singular matrices. *)
