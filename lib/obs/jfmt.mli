(** Tiny JSON text helpers shared by {!Trace} and {!Journal}.

    [repro_obs] sits below every other library (only [unix] underneath),
    so it cannot use the serve-layer codec; this is the minimal encoding
    surface the observability artefacts need.  Floats render with the
    shortest decimal string that parses back to the exact value. *)

type value = S of string | F of float | I of int

val float_repr : float -> string
(** Lossless float rendering ([null] when not finite). *)

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

val quote : string -> string
(** [escape] plus surrounding quotes. *)

val obj : (string * value) list -> string
(** Compact one-line JSON object, fields in the given order. *)
