module T = Repro_circuit.Topologies

type performance = {
  dc_gain_db : float;
  gbw : float;
  phase_margin_deg : float;
  power : float;
  slew_rate : float;
}

let pp_performance ppf p =
  Format.fprintf ppf "gain=%.1f dB gbw=%s pm=%.0f deg power=%.2f mW slew=%s"
    p.dc_gain_db
    (Repro_util.Si.format_unit p.gbw "Hz")
    p.phase_margin_deg (p.power *. 1e3)
    (Repro_util.Si.format_unit p.slew_rate "V/s")

type failure = Bias_failure of string | No_gain

let failure_to_string = function
  | Bias_failure msg -> "bias failure: " ^ msg
  | No_gain -> "no unity-gain crossing"

let characterise ?(vdd = 1.2) ?(cload = 1e-12) ?(f_start = 10.0)
    ?(f_stop = 50e9) ?(points = 160) params =
  let net = T.two_stage_ota ~vdd ~cload params in
  let compiled = Mna.compile net in
  match Dcop.solve_result compiled with
  | Error e -> Error (Bias_failure (Solver_error.to_string e))
  | Ok op ->
    let ac = Ac.linearise compiled op in
    let sweep =
      Ac.logsweep ac ~input:"Vinp" ~output:"out" ~f_start ~f_stop ~points
    in
    let bode = Ac.bode_summary sweep in
    (match (bode.Ac.unity_gain_freq, bode.Ac.phase_margin_deg) with
    | Some gbw, Some pm ->
      let supply_current = -.Dcop.source_current compiled op "Vdd" in
      (* slew limit: the whole tail current available to charge Cc *)
      let slew_rate = 2.0 *. params.T.ibias /. params.T.cc in
      Ok
        {
          dc_gain_db = bode.Ac.dc_gain_db;
          gbw;
          phase_margin_deg = pm;
          power = vdd *. supply_current;
          slew_rate;
        }
    | None, _ | _, None -> Error No_gain)
