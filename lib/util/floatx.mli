(** Small float helpers shared across the numerical code. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] limits [x] to [\[lo, hi\]].  Requires [lo <= hi]. *)

val close : ?rtol:float -> ?atol:float -> float -> float -> bool
(** [close a b] is true when [|a - b| <= atol + rtol * max |a| |b|].
    Defaults: [rtol = 1e-9], [atol = 1e-12]. *)

val linspace : float -> float -> int -> float array
(** [linspace lo hi n] returns [n >= 2] evenly spaced points including both
    endpoints. *)

val logspace : float -> float -> int -> float array
(** [logspace lo hi n]: [n] logarithmically spaced points between the
    strictly positive bounds [lo] and [hi]. *)

val lerp : float -> float -> float -> float
(** [lerp a b t] = [a + t * (b - a)]. *)

val is_finite : float -> bool

val sum : float array -> float
(** Kahan-compensated sum. *)
