(* Run-lifecycle tests: snapshot format + atomicity, checkpointed GA
   state round-trips, resumable prefix maps, and the headline
   guarantee — interrupting the hierarchical flow at any phase or
   generation boundary and resuming produces byte-identical artefacts. *)

module H = Hieropt
module E = Repro_engine
module Prng = Repro_util.Prng
module Nsga2 = Repro_moo.Nsga2
module Spea2 = Repro_moo.Spea2

let with_tmpdir f =
  let dir = Filename.temp_file "hieropt_ckpt" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path = In_channel.with_open_bin path In_channel.input_all
let write_file path s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* ---- snapshot format ---- *)

let test_snapshot_roundtrip () =
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "s.snapshot" in
  let s = E.Snapshot.create ~fingerprint:"fp-1" in
  E.Snapshot.set_int s "gen" 7;
  E.Snapshot.set_string s "phase" "variation model";
  (* floats must survive bit-exactly, including the nasty ones *)
  let floats = [| 1.0; -0.0; Float.pi; 1e-300; infinity; neg_infinity; nan |] in
  E.Snapshot.set_floats s "f" floats;
  E.Snapshot.set_rows s "rows" [| [| 1.5; 2.5 |]; [||]; [| -3.25 |] |];
  E.Snapshot.set_bits s "prng" [| 0L; -1L; Int64.min_int; 42L |];
  E.Snapshot.save s path;
  match E.Snapshot.load ~fingerprint:"fp-1" path with
  | Error e -> Alcotest.failf "load: %s" (E.Snapshot.load_error_to_string e)
  | Ok s2 ->
    Alcotest.(check (option int)) "int" (Some 7) (E.Snapshot.get_int s2 "gen");
    Alcotest.(check (option string)) "string" (Some "variation model")
      (E.Snapshot.get_string s2 "phase");
    (* [compare] distinguishes nan/-0.0 correctly, [=] does not *)
    Alcotest.(check bool) "floats bit-exact" true
      (compare (E.Snapshot.get_floats s2 "f") (Some floats) = 0);
    Alcotest.(check bool) "rows" true
      (compare
         (E.Snapshot.get_rows s2 "rows")
         (Some [| [| 1.5; 2.5 |]; [||]; [| -3.25 |] |])
      = 0);
    Alcotest.(check bool) "bits" true
      (E.Snapshot.get_bits s2 "prng" = Some [| 0L; -1L; Int64.min_int; 42L |]);
    Alcotest.(check bool) "absent key" true (E.Snapshot.get_int s2 "nope" = None);
    (* a second save of the loaded state is byte-identical (sorted keys) *)
    let path2 = Filename.concat dir "s2.snapshot" in
    E.Snapshot.save s2 path2;
    Alcotest.(check string) "stable bytes" (read_file path) (read_file path2)

let test_snapshot_remove_and_atomicity () =
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "s.snapshot" in
  let s = E.Snapshot.create ~fingerprint:"fp" in
  E.Snapshot.set_int s "a" 1;
  E.Snapshot.set_int s "b" 2;
  Alcotest.(check bool) "mem" true (E.Snapshot.mem s "a");
  E.Snapshot.remove s "a";
  Alcotest.(check bool) "removed" false (E.Snapshot.mem s "a");
  E.Snapshot.save s path;
  E.Snapshot.save s path;
  (* the tmp file never survives a completed save *)
  Alcotest.(check bool) "no tmp residue" false
    (Sys.file_exists (path ^ ".tmp"));
  Alcotest.(check bool) "snapshot exists" true (Sys.file_exists path)

let load_err path ~fingerprint =
  match E.Snapshot.load ~fingerprint path with
  | Ok _ -> Alcotest.fail "expected a load error"
  | Error e -> e

let test_snapshot_load_errors () =
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "s.snapshot" in
  (match load_err path ~fingerprint:"fp" with
  | E.Snapshot.Missing _ -> ()
  | e -> Alcotest.failf "expected Missing, got %s" (E.Snapshot.load_error_to_string e));
  (* garbage magic *)
  write_file path "not a snapshot at all\n";
  (match load_err path ~fingerprint:"fp" with
  | E.Snapshot.Corrupt _ -> ()
  | e -> Alcotest.failf "expected Corrupt, got %s" (E.Snapshot.load_error_to_string e));
  (* a valid file... *)
  let s = E.Snapshot.create ~fingerprint:"fp" in
  E.Snapshot.set_int s "gen" 3;
  E.Snapshot.set_floats s "f" [| 1.0; 2.0 |];
  E.Snapshot.save s path;
  (match E.Snapshot.load ~fingerprint:"fp" path with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid load: %s" (E.Snapshot.load_error_to_string e));
  let good = read_file path in
  (* ...truncated (torn write): drop the trailing end-marker line *)
  let lines = String.split_on_char '\n' good in
  let torn =
    String.concat "\n"
      (List.filteri (fun i _ -> i < List.length lines - 2) lines)
  in
  write_file path (torn ^ "\n");
  (match load_err path ~fingerprint:"fp" with
  | E.Snapshot.Corrupt _ -> ()
  | e -> Alcotest.failf "expected Corrupt (torn), got %s" (E.Snapshot.load_error_to_string e));
  (* ...version bumped: rewrite the first (magic) line *)
  let bumped =
    match String.index_opt good '\n' with
    | Some i -> "hieropt-snapshot 999" ^ String.sub good i (String.length good - i)
    | None -> Alcotest.fail "single-line snapshot"
  in
  write_file path bumped;
  (match load_err path ~fingerprint:"fp" with
  | E.Snapshot.Version_mismatch { found = 999; _ } -> ()
  | e -> Alcotest.failf "expected Version_mismatch, got %s" (E.Snapshot.load_error_to_string e));
  (* ...wrong config fingerprint *)
  write_file path good;
  match load_err path ~fingerprint:"other-config" with
  | E.Snapshot.Fingerprint_mismatch { found = "fp"; expected = "other-config" } -> ()
  | e -> Alcotest.failf "expected Fingerprint_mismatch, got %s" (E.Snapshot.load_error_to_string e)

(* ---- prng state capture ---- *)

let test_prng_bits_roundtrip () =
  let p = Prng.create 42 in
  (* burn some state, and leave a Box-Muller spare in flight *)
  for _ = 1 to 17 do
    ignore (Prng.float p 1.0)
  done;
  ignore (Prng.gaussian p ~mean:0.0 ~sigma:1.0);
  let q =
    match Prng.of_bits (Prng.to_bits p) with
    | Some q -> q
    | None -> Alcotest.fail "of_bits rejected to_bits output"
  in
  for i = 1 to 100 do
    Alcotest.(check bool)
      (Printf.sprintf "draw %d identical" i)
      true
      (Prng.gaussian p ~mean:0.0 ~sigma:1.0
       = Prng.gaussian q ~mean:0.0 ~sigma:1.0)
  done;
  Alcotest.(check bool) "wrong arity rejected" true
    (Prng.of_bits [| 1L; 2L |] = None);
  Alcotest.(check bool) "bad spare flag rejected" true
    (Prng.of_bits [| 1L; 2L; 3L; 4L; 7L; 0L |] = None)

(* ---- step-wise GA APIs ---- *)

(* cheap 2-objective problem with a constraint, so rank/crowding and
   constraint domination all get exercised *)
let zdt1ish =
  Repro_moo.Problem.create ~name:"zdt1ish"
    ~bounds:(Array.make 6 (0.0, 1.0))
    ~objective_names:[| "f1"; "f2" |]
    (fun v ->
      let f1 = v.(0) in
      let s = ref 0.0 in
      for i = 1 to 5 do
        s := !s +. v.(i)
      done;
      let g = 1.0 +. (9.0 *. !s /. 5.0) in
      {
        Repro_moo.Problem.objectives = [| f1; g *. (1.0 -. sqrt (f1 /. g)) |];
        constraint_violation = Float.max 0.0 (0.05 -. f1);
      })

let nsga_opts =
  { Nsga2.default_options with Nsga2.population = 16; generations = 12 }

let test_nsga2_stepwise_equals_optimise () =
  let a = Nsga2.optimise ~options:nsga_opts zdt1ish (Prng.create 5) in
  let st = Nsga2.init ~options:nsga_opts zdt1ish (Prng.create 5) in
  while Nsga2.generation st < nsga_opts.Nsga2.generations do
    Nsga2.step zdt1ish st
  done;
  Alcotest.(check bool) "identical final population" true
    (compare a (Nsga2.population st) = 0)

let test_nsga2_save_restore_midrun () =
  let reference = Nsga2.optimise ~options:nsga_opts zdt1ish (Prng.create 9) in
  let st = Nsga2.init ~options:nsga_opts zdt1ish (Prng.create 9) in
  for _ = 1 to 5 do
    Nsga2.step zdt1ish st
  done;
  let snap = E.Snapshot.create ~fingerprint:"fp" in
  Nsga2.save_state st snap ~key:"ga";
  (* keep mutating the original: the restored copy must be independent *)
  Nsga2.step zdt1ish st;
  let st2 =
    match Nsga2.restore_state ~options:nsga_opts zdt1ish snap ~key:"ga" with
    | Some st2 -> st2
    | None -> Alcotest.fail "restore_state failed"
  in
  Alcotest.(check int) "resumed at generation 5" 5 (Nsga2.generation st2);
  while Nsga2.generation st2 < nsga_opts.Nsga2.generations do
    Nsga2.step zdt1ish st2
  done;
  Alcotest.(check bool) "restored run matches uninterrupted" true
    (compare reference (Nsga2.population st2) = 0);
  (* malformed / absent state cold-starts *)
  Alcotest.(check bool) "absent key" true
    (Nsga2.restore_state ~options:nsga_opts zdt1ish snap ~key:"nope" = None);
  Nsga2.clear_state snap ~key:"ga";
  Alcotest.(check bool) "cleared state" true
    (Nsga2.restore_state ~options:nsga_opts zdt1ish snap ~key:"ga" = None)

let test_spea2_save_restore_midrun () =
  let opts =
    { Spea2.default_options with Spea2.population = 16; archive = 12; generations = 10 }
  in
  let reference = Spea2.optimise ~options:opts zdt1ish (Prng.create 3) in
  let st = Spea2.init ~options:opts zdt1ish (Prng.create 3) in
  for _ = 1 to 4 do
    Spea2.step zdt1ish st
  done;
  let snap = E.Snapshot.create ~fingerprint:"fp" in
  Spea2.save_state st snap ~key:"ga";
  let st2 =
    match Spea2.restore_state ~options:opts zdt1ish snap ~key:"ga" with
    | Some st2 -> st2
    | None -> Alcotest.fail "restore_state failed"
  in
  while Spea2.generation st2 < opts.Spea2.generations do
    Spea2.step zdt1ish st2
  done;
  Alcotest.(check bool) "restored run matches uninterrupted" true
    (compare reference (Spea2.archive st2) = 0)

(* ---- resumable prefix maps ---- *)

let test_resumable_map () =
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "s.snapshot" in
  let items = Array.init 10 float_of_int in
  let calls = ref 0 in
  let f x =
    incr calls;
    (x *. x) +. 0.5
  in
  let encode v = [| v |] in
  let decode r =
    if Array.length r = 1 then r.(0) else failwith "malformed row"
  in
  E.Pool.with_pool ~size:1 @@ fun pool ->
  let ck = E.Checkpoint.create ~every:3 ~fingerprint:"fp" path in
  let r1 = E.Checkpoint.resumable_map ~pool ck ~key:"k" ~encode ~decode f items in
  Alcotest.(check int) "all evaluated" 10 !calls;
  Alcotest.(check bool) "results" true
    (r1 = Array.map (fun x -> (x *. x) +. 0.5) items);
  (* resume over a completed prefix: nothing re-evaluated *)
  let ck2 =
    match E.Checkpoint.resume ~every:3 ~fingerprint:"fp" path with
    | Ok ck -> ck
    | Error e -> Alcotest.failf "resume: %s" e
  in
  calls := 0;
  let r2 = E.Checkpoint.resumable_map ~pool ck2 ~key:"k" ~encode ~decode f items in
  Alcotest.(check int) "prefix fully restored" 0 !calls;
  Alcotest.(check bool) "identical results" true (r1 = r2);
  (* corrupt one stored row: the whole prefix is discarded, loudly *)
  let snap = E.Checkpoint.snapshot ck2 in
  E.Snapshot.set_rows snap "k" [| [| 1.0; 2.0; 3.0 |] |];
  calls := 0;
  let r3 = E.Checkpoint.resumable_map ~pool ck2 ~key:"k" ~encode ~decode f items in
  Alcotest.(check int) "cold restart after bad row" 10 !calls;
  Alcotest.(check bool) "identical results still" true (r1 = r3)

let test_resumable_map_interrupt () =
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "s.snapshot" in
  let items = Array.init 10 float_of_int in
  let calls = ref 0 in
  let f x =
    incr calls;
    (* request an interrupt from inside the first chunk: the guard
       between chunks must flush the completed prefix and raise *)
    if !calls = 4 then E.Checkpoint.request_interrupt ();
    x +. 1.0
  in
  let encode v = [| v |] and decode r = r.(0) in
  E.Pool.with_pool ~size:1 @@ fun pool ->
  E.Checkpoint.clear_interrupt ();
  let ck = E.Checkpoint.create ~every:4 ~fingerprint:"fp" path in
  (try
     ignore (E.Checkpoint.resumable_map ~pool ck ~key:"k" ~encode ~decode f items);
     Alcotest.fail "expected Interrupted"
   with E.Checkpoint.Interrupted -> ());
  E.Checkpoint.clear_interrupt ();
  Alcotest.(check int) "stopped after first chunk" 4 !calls;
  (* the flushed snapshot holds the 4-item prefix; resume finishes the rest *)
  let ck2 =
    match E.Checkpoint.resume ~every:4 ~fingerprint:"fp" path with
    | Ok ck -> ck
    | Error e -> Alcotest.failf "resume: %s" e
  in
  calls := 100 (* past the interrupt trigger *);
  let r = E.Checkpoint.resumable_map ~pool ck2 ~key:"k" ~encode ~decode f items in
  Alcotest.(check int) "only the tail evaluated" 106 !calls;
  Alcotest.(check bool) "seam-free results" true
    (r = Array.map (fun x -> x +. 1.0) items)

(* ---- the headline guarantee: flow-level interrupt + resume ---- *)

let tiny_cfg ~model_dir ?checkpoint_every ?(resume = false) () =
  H.Hierarchy.make_config ~scale:H.Hierarchy.tiny_scale
    ~spec:H.Hierarchy.tiny_spec ~model_dir ?checkpoint_every ~resume ()

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else scan (i + 1)
  in
  scan 0

(* interrupting at every phase boundary (and mid-variation, at a design
   boundary) and resuming must reproduce the uninterrupted artefacts
   byte-for-byte; a corrupted snapshot must warn and restart cold to the
   same place.  The reference run's eval cache is copied into each leg's
   model dir so the re-runs hit memoised evaluations — which also
   exercises the engine's warm-vs-cold bit-identity guarantee. *)
let test_flow_interrupt_resume () =
  with_tmpdir @@ fun root ->
  let ref_dir = Filename.concat root "ref" in
  Sys.mkdir ref_dir 0o755;
  E.Checkpoint.clear_interrupt ();
  let reference = H.Hierarchy.run (tiny_cfg ~model_dir:ref_dir ()) in
  let ref_tbl = read_file (Filename.concat ref_dir "pareto.tbl") in
  let essence (r : H.Hierarchy.result) =
    (r.H.Hierarchy.entries, r.H.Hierarchy.rows, r.H.Hierarchy.selected,
     r.H.Hierarchy.yield)
  in
  let check_same name result dir =
    Alcotest.(check bool) (name ^ ": results bit-identical") true
      (compare (essence reference) (essence result) = 0);
    Alcotest.(check string) (name ^ ": pareto.tbl bytes") ref_tbl
      (read_file (Filename.concat dir "pareto.tbl"))
  in
  let fresh_dir name =
    let dir = Filename.concat root name in
    Sys.mkdir dir 0o755;
    (* warm the eval cache so the interrupted legs re-simulate nothing *)
    write_file
      (Filename.concat dir "eval.cache")
      (read_file (Filename.concat ref_dir "eval.cache"));
    dir
  in
  (* every phase boundary *)
  List.iter
    (fun phase ->
      let name = H.Hierarchy.phase_name phase in
      let dir = fresh_dir name in
      E.Checkpoint.clear_interrupt ();
      (try
         ignore
           (H.Hierarchy.run ~interrupt_after:phase
              (tiny_cfg ~model_dir:dir ~checkpoint_every:1 ()));
         Alcotest.failf "%s: expected Interrupted" name
       with E.Checkpoint.Interrupted -> ());
      let resumed =
        H.Hierarchy.run (tiny_cfg ~model_dir:dir ~checkpoint_every:1 ~resume:true ())
      in
      check_same name resumed dir)
    H.Hierarchy.[ Circuit_ga; Variation; Model; System_ga ];
  (* mid-phase: a design boundary inside the variation-model loop *)
  let dir = fresh_dir "mid-variation" in
  E.Checkpoint.clear_interrupt ();
  let armed = ref false in
  let progress s =
    if (not !armed) && contains s "variation model: design 2/" then begin
      armed := true;
      E.Checkpoint.request_interrupt ()
    end
  in
  (try
     ignore
       (H.Hierarchy.run ~progress
          (tiny_cfg ~model_dir:dir ~checkpoint_every:1 ()));
     Alcotest.fail "mid-variation: expected Interrupted"
   with E.Checkpoint.Interrupted -> ());
  Alcotest.(check bool) "interrupt armed mid-variation" true !armed;
  E.Checkpoint.clear_interrupt ();
  let resumed =
    H.Hierarchy.run (tiny_cfg ~model_dir:dir ~checkpoint_every:1 ~resume:true ())
  in
  check_same "mid-variation" resumed dir;
  (* corrupted snapshot: loud warning, clean cold start, same artefacts *)
  let dir = fresh_dir "corrupt" in
  write_file (Filename.concat dir "run.snapshot") "hieropt-snapshot 1\ngarbage\n";
  let warned_before = E.Telemetry.counter "checkpoint.cold_start" in
  E.Checkpoint.clear_interrupt ();
  let result =
    H.Hierarchy.run (tiny_cfg ~model_dir:dir ~checkpoint_every:1 ~resume:true ())
  in
  Alcotest.(check bool) "cold-start warning emitted" true
    (E.Telemetry.counter "checkpoint.cold_start" > warned_before);
  check_same "corrupt" result dir

let suite =
  [
    Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot remove + atomicity" `Quick
      test_snapshot_remove_and_atomicity;
    Alcotest.test_case "snapshot load errors" `Quick test_snapshot_load_errors;
    Alcotest.test_case "prng bits roundtrip" `Quick test_prng_bits_roundtrip;
    Alcotest.test_case "nsga2 stepwise = optimise" `Quick
      test_nsga2_stepwise_equals_optimise;
    Alcotest.test_case "nsga2 save/restore mid-run" `Quick
      test_nsga2_save_restore_midrun;
    Alcotest.test_case "spea2 save/restore mid-run" `Quick
      test_spea2_save_restore_midrun;
    Alcotest.test_case "resumable map" `Quick test_resumable_map;
    Alcotest.test_case "resumable map interrupt" `Quick
      test_resumable_map_interrupt;
    Alcotest.test_case "flow interrupt/resume bit-identity" `Slow
      test_flow_interrupt_resume;
  ]
