type t = { n : int; mutable count : int }

let create n =
  if n < 1 then invalid_arg "Divider.create: N must be >= 1";
  { n; count = 0 }

let modulus t = t.n

let clock_edge t =
  t.count <- t.count + 1;
  if t.count >= t.n then begin
    t.count <- 0;
    true
  end
  else false

let reset t = t.count <- 0
