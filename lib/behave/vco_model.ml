type params = {
  f0 : float;
  v0 : float;
  kvco : float;
  fmin : float;
  fmax : float;
  jitter : float;
}

let validate p =
  if p.fmin <= 0.0 || p.fmax < p.fmin then
    invalid_arg "Vco_model: need 0 < fmin <= fmax";
  if p.jitter < 0.0 then invalid_arg "Vco_model: negative jitter";
  if p.f0 <= 0.0 then invalid_arg "Vco_model: f0 must be positive"

let frequency p vctl =
  let f = p.f0 +. (p.kvco *. (vctl -. p.v0)) in
  Repro_util.Floatx.clamp ~lo:p.fmin ~hi:p.fmax f

type t = {
  params : params;
  prng : Repro_util.Prng.t option;
  mutable phi : float; (* cycles *)
}

let create ?prng params =
  validate params;
  { params; prng; phi = 0.0 }

let phase t = t.phi

(* Period jitter sigma per cycle means phase diffusion: over an interval
   containing n = f dt cycles the accumulated time error has variance
   n sigma^2, i.e. a phase error (in cycles) of sqrt(n) * sigma * f. *)
let advance t ~vctl ~dt =
  let f = frequency t.params vctl in
  let dphi = f *. dt in
  let noise =
    match t.prng with
    | None -> 0.0
    | Some prng ->
      if t.params.jitter <= 0.0 then 0.0
      else begin
        let sigma_cycles = sqrt (Float.max dphi 0.0) *. t.params.jitter *. f in
        Repro_util.Prng.gaussian prng ~mean:0.0 ~sigma:sigma_cycles
      end
  in
  let before = t.phi in
  t.phi <- t.phi +. Float.max 0.0 (dphi +. noise);
  int_of_float (Float.floor t.phi) - int_of_float (Float.floor before)

let reset t = t.phi <- 0.0
