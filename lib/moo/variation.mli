(** Real-coded variation operators shared by the evolutionary optimisers
    (NSGA-II, SPEA2): simulated-binary crossover and polynomial mutation
    (Deb & Agrawal). *)

val sbx :
  Repro_util.Prng.t ->
  eta:float ->
  lo:float ->
  hi:float ->
  float ->
  float ->
  float * float
(** [sbx prng ~eta ~lo ~hi x1 x2] returns two children clamped to
    [\[lo, hi\]]. Equal parents are returned unchanged. *)

val polynomial_mutation :
  Repro_util.Prng.t -> eta:float -> lo:float -> hi:float -> float -> float

val crossover_pair :
  Repro_util.Prng.t ->
  bounds:(float * float) array ->
  crossover_prob:float ->
  eta_crossover:float ->
  float array ->
  float array ->
  float array * float array
(** Whole-vector SBX: with probability [crossover_prob], each variable is
    independently crossed with probability 1/2. Parents are copied, never
    mutated. *)

val mutate_in_place :
  Repro_util.Prng.t ->
  bounds:(float * float) array ->
  mutation_prob:float ->
  eta_mutation:float ->
  float array ->
  unit
