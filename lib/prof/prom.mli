(** Prometheus text exposition (format 0.0.4) of the live telemetry
    surface: counters as [counter] metrics, timers as [_seconds]
    gauges, histograms as summaries (p50/p90/p99 quantile gauges plus
    [_sum]/[_count]).  Metric names are sanitized
    ([hieropt_<name with non-alphanumerics as _>]) and the data comes
    from the same snapshot the JSON [/v1/metrics] renders. *)

val metric : string -> string
(** Sanitized, prefixed metric name. *)

val render_parts :
  (string * int) list ->
  (string * float) list ->
  (string * Repro_obs.Histogram.stats) list ->
  string
(** Render explicit counter / timer / histogram snapshots (tests). *)

val render : unit -> string
(** Render the live Telemetry and Histogram registries. *)
