module Prng = Repro_util.Prng

let resolve = function Some p -> p | None -> Pool.get_default ()

let assemble results =
  Array.map (function Some v -> v | None -> assert false) results

let map ?pool ?chunk f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let pool = resolve pool in
    let results = Array.make n None in
    let failure = Atomic.make None in
    let body i =
      if Atomic.get failure = None then
        try results.(i) <- Some (f arr.(i))
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set failure None (Some (e, bt)))
    in
    Pool.run_items ?chunk pool n body;
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> assemble results
  end

let mapi ?pool ?chunk f arr =
  let n = Array.length arr in
  let indexed = Array.init n (fun i -> (i, arr.(i))) in
  map ?pool ?chunk (fun (i, x) -> f i x) indexed

let init ?pool ?chunk n f =
  if n < 0 then invalid_arg "Parmap.init: negative length";
  map ?pool ?chunk f (Array.init n (fun i -> i))

let map_seeded ?pool ?chunk ~prng f arr =
  (* One child stream per element, split sequentially *before* dispatch:
     stream identity depends only on the element index, never on which
     worker runs it or in what order — the determinism keystone. *)
  let streams = Prng.split_n prng (Array.length arr) in
  let indexed = Array.mapi (fun i x -> (streams.(i), x)) arr in
  map ?pool ?chunk (fun (stream, x) -> f stream x) indexed
