let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty sample")

let mean xs =
  check_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "Stats.variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. (((x -. m) *. (x -. m)))) xs;
    !acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let relative_spread xs =
  let m = mean xs in
  if m = 0.0 then 0.0 else stddev xs /. Float.abs m

let min_max xs =
  check_nonempty "Stats.min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

let percentile xs p =
  check_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0,100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let w = rank -. float_of_int lo in
    ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))
  end

let median xs = percentile xs 50.0

let histogram xs ~bins =
  check_nonempty "Stats.histogram" xs;
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let lo, hi = min_max xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  let place x =
    let i = int_of_float ((x -. lo) /. width) in
    let i = if i >= bins then bins - 1 else if i < 0 then 0 else i in
    counts.(i) <- counts.(i) + 1
  in
  Array.iter place xs;
  Array.mapi
    (fun i c -> (lo +. ((float_of_int i +. 0.5) *. width), c))
    counts

type yield_estimate = {
  pass : int;
  total : int;
  fraction : float;
  ci_low : float;
  ci_high : float;
}

(* Wilson score interval at 95% (z = 1.96). *)
let yield ~pass ~total =
  if total <= 0 then invalid_arg "Stats.yield: total must be positive";
  if pass < 0 || pass > total then invalid_arg "Stats.yield: pass outside [0,total]";
  let z = 1.96 in
  let n = float_of_int total in
  let p = float_of_int pass /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let centre = (p +. (z2 /. (2.0 *. n))) /. denom in
  let half =
    z *. sqrt (((p *. (1.0 -. p)) +. (z2 /. (4.0 *. n))) /. n) /. denom
  in
  {
    pass;
    total;
    fraction = p;
    ci_low = Float.max 0.0 (centre -. half);
    ci_high = Float.min 1.0 (centre +. half);
  }

let pp_yield ppf y =
  Format.fprintf ppf "%d/%d = %.1f%% (95%% CI %.1f%%-%.1f%%)" y.pass y.total
    (100.0 *. y.fraction) (100.0 *. y.ci_low) (100.0 *. y.ci_high)
