module Stats = Repro_util.Stats

let checkf msg = Alcotest.(check (float 1e-9)) msg
let checkf_loose msg = Alcotest.(check (float 1e-6)) msg

let test_mean () =
  checkf "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  checkf "singleton" 5.0 (Stats.mean [| 5.0 |])

let test_mean_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty sample")
    (fun () -> ignore (Stats.mean [||]))

let test_variance () =
  checkf "variance of constant" 0.0 (Stats.variance [| 4.0; 4.0; 4.0 |]);
  checkf "sample variance" 2.5 (Stats.variance [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  checkf "singleton variance" 0.0 (Stats.variance [| 7.0 |])

let test_stddev () =
  checkf_loose "stddev" (sqrt 2.5) (Stats.stddev [| 1.0; 2.0; 3.0; 4.0; 5.0 |])

let test_relative_spread () =
  checkf_loose "relative spread" (sqrt 2.5 /. 3.0)
    (Stats.relative_spread [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  checkf "zero-mean spread" 0.0 (Stats.relative_spread [| -1.0; 1.0 |])

let test_min_max () =
  let lo, hi = Stats.min_max [| 3.0; -1.0; 4.0; 1.0 |] in
  checkf "min" (-1.0) lo;
  checkf "max" 4.0 hi

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  checkf "p0" 1.0 (Stats.percentile xs 0.0);
  checkf "p50" 3.0 (Stats.percentile xs 50.0);
  checkf "p100" 5.0 (Stats.percentile xs 100.0);
  checkf "p25" 2.0 (Stats.percentile xs 25.0);
  checkf "interpolated" 1.4 (Stats.percentile xs 10.0)

let test_percentile_unsorted_input () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  checkf "median of unsorted" 3.0 (Stats.median xs);
  (* input must not be mutated *)
  Alcotest.(check (array (float 0.0))) "input untouched"
    [| 5.0; 1.0; 3.0; 2.0; 4.0 |] xs

let test_percentile_invalid () =
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p outside [0,100]") (fun () ->
      ignore (Stats.percentile [| 1.0 |] 120.0))

let test_histogram () =
  let h = Stats.histogram [| 0.0; 0.1; 0.9; 1.0 |] ~bins:2 in
  Alcotest.(check int) "bins" 2 (Array.length h);
  Alcotest.(check int) "low count" 2 (snd h.(0));
  Alcotest.(check int) "high count" 2 (snd h.(1));
  let total = Array.fold_left (fun acc (_, c) -> acc + c) 0 h in
  Alcotest.(check int) "all samples placed" 4 total

let test_histogram_constant () =
  let h = Stats.histogram [| 2.0; 2.0; 2.0 |] ~bins:3 in
  let total = Array.fold_left (fun acc (_, c) -> acc + c) 0 h in
  Alcotest.(check int) "constant data placed" 3 total

let test_yield_all_pass () =
  let y = Stats.yield ~pass:100 ~total:100 in
  checkf "fraction" 1.0 y.Stats.fraction;
  Alcotest.(check bool) "upper CI is 1" true (y.Stats.ci_high > 0.9999);
  Alcotest.(check bool) "lower CI below 1" true (y.Stats.ci_low < 1.0);
  Alcotest.(check bool) "lower CI still high" true (y.Stats.ci_low > 0.95)

let test_yield_half () =
  let y = Stats.yield ~pass:50 ~total:100 in
  checkf "fraction" 0.5 y.Stats.fraction;
  Alcotest.(check bool) "CI brackets fraction" true
    (y.Stats.ci_low < 0.5 && y.Stats.ci_high > 0.5);
  Alcotest.(check bool) "CI reasonable width" true
    (y.Stats.ci_high -. y.Stats.ci_low < 0.25)

let test_yield_zero () =
  let y = Stats.yield ~pass:0 ~total:50 in
  checkf "fraction" 0.0 y.Stats.fraction;
  Alcotest.(check bool) "lower bound 0" true (y.Stats.ci_low < 1e-4)

let test_yield_invalid () =
  Alcotest.check_raises "bad total"
    (Invalid_argument "Stats.yield: total must be positive") (fun () ->
      ignore (Stats.yield ~pass:0 ~total:0));
  Alcotest.check_raises "pass > total"
    (Invalid_argument "Stats.yield: pass outside [0,total]") (fun () ->
      ignore (Stats.yield ~pass:5 ~total:3))

(* property: variance is translation-invariant and scales quadratically *)
let prop_variance_affine =
  QCheck.Test.make ~name:"variance affine transform" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 2 20) (float_range (-100.) 100.))
              (float_range (-10.) 10.))
    (fun (xs, shift) ->
      QCheck.assume (List.length xs >= 2);
      let a = Array.of_list xs in
      let shifted = Array.map (fun x -> x +. shift) a in
      let scaled = Array.map (fun x -> 2.0 *. x) a in
      let v = Stats.variance a in
      Float.abs (Stats.variance shifted -. v) <= 1e-6 *. (1.0 +. v)
      && Float.abs (Stats.variance scaled -. (4.0 *. v)) <= 1e-6 *. (1.0 +. (4.0 *. v)))

let prop_minmax_bracket_mean =
  QCheck.Test.make ~name:"min <= mean <= max" ~count:500
    QCheck.(list_of_size Gen.(int_range 1 30) (float_range (-1e6) 1e6))
    (fun xs ->
      let a = Array.of_list xs in
      let lo, hi = Stats.min_max a in
      let m = Stats.mean a in
      lo <= m +. 1e-9 && m <= hi +. 1e-9)

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "mean empty" `Quick test_mean_empty;
    Alcotest.test_case "variance" `Quick test_variance;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "relative spread" `Quick test_relative_spread;
    Alcotest.test_case "min max" `Quick test_min_max;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile unsorted" `Quick test_percentile_unsorted_input;
    Alcotest.test_case "percentile invalid" `Quick test_percentile_invalid;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "histogram constant" `Quick test_histogram_constant;
    Alcotest.test_case "yield all pass" `Quick test_yield_all_pass;
    Alcotest.test_case "yield half" `Quick test_yield_half;
    Alcotest.test_case "yield zero" `Quick test_yield_zero;
    Alcotest.test_case "yield invalid" `Quick test_yield_invalid;
    QCheck_alcotest.to_alcotest prop_variance_affine;
    QCheck_alcotest.to_alcotest prop_minmax_bracket_mean;
  ]
