* Parameterised resistive ladder — exercises nested .subckt
* definitions (a subcircuit defined inside another, visible only
* there), lexical scoping, and overrides flowing through two levels of
* instantiation.  Parse it with (internal nodes carry the instance
* prefix)
*   hieropt simulate examples/netlists/divider.sp --probe Xlad.mid --probe tap
*
* Elaborated element names show the flattening convention:
* Xlad.Xtop.R1, Xlad.Xbot.R2, ...

.param runit = 1k

.subckt ladder in out gnd_ref ratio=2
* `half` is only visible inside `ladder`; its default resistance is
* derived from the global unit and the ladder's ratio
.subckt half a b r={runit * ratio}
R1 a m {r}
R2 m b {r}
.ends half
Xtop in mid half
Xbot mid out half r={runit / ratio}
Rload out gnd_ref {4 * runit}
.ends ladder

Vin in 0 DC 1.0
Xlad in tap 0 ladder ratio=4
.end
