(** The model server: a readiness-based event loop.  Each reactor is
    one Domain running a [Unix.select] loop over its own SO_REUSEPORT
    listener (kernel-side accept sharding; single shared listener with
    racing non-blocking accepts when the kernel lacks reuseport), its
    wake pipe and its connections.  Sockets are non-blocking; bytes are
    fed to a per-connection {!Conn} state machine and complete requests
    are answered inline, with responses drained through a write buffer
    under backpressure (a connection whose output backlog passes the
    high watermark stops being read until it drains).

    Lifecycle: {!start} binds and returns immediately (port 0 is
    resolved — read the bound port back from {!port}); {!stop} begins a
    graceful drain — listeners close, idle connections are dropped,
    half-read requests get answered with [Connection: close] — and past
    [drain_timeout] remaining connections are force-closed.  {!wait}
    blocks until the drain completes.  {!install_signal_handlers} maps
    SIGTERM/SIGINT onto {!stop}.

    Per-connection activity is bounded by [request_timeout] (idle or
    stalled-mid-request connections are reaped by the reactor), so a
    slow or hostile client cannot pin a reactor.  Handlers run inline
    on the reactor that owns the connection: they must be quick and
    safe to call from several domains at once. *)

type t

type handler = Http.request -> int * (string * string) list * string
(** A request handler: returns (status, extra headers, body).  Must be
    safe to call from several reactor domains at once. *)

val start_with :
  ?addr:string ->             (* bind address, default "127.0.0.1" *)
  ?port:int ->                (* default 8190; 0 = ephemeral *)
  ?reactors:int ->            (* reactor domains, default 2, min 1 *)
  ?request_timeout:float ->   (* idle/stall bound, seconds, default 10. *)
  handler:handler ->
  unit ->
  t
(** Start the HTTP machinery around an arbitrary request handler — the
    transport (reactors, keep-alive, drain) is shared between the
    model server and the distributed eval-workers; only the routing
    differs.  @raise Unix.Unix_error if the address cannot be bound. *)

val start :
  ?addr:string ->
  ?port:int ->
  ?reactors:int ->
  ?request_timeout:float ->
  api:Api.t ->
  unit ->
  t
(** {!start_with} over {!Api.handle} — the model server.
    @raise Unix.Unix_error if the address cannot be bound. *)

val port : t -> int
(** The actually-bound port (useful after [?port:0]). *)

val stop : ?drain_timeout:float -> t -> unit
(** Begin graceful shutdown; idempotent.  [drain_timeout] (default 5
    seconds) bounds how long in-flight connections may take to finish
    before their descriptors are closed under them. *)

val wait : t -> unit
(** Block until the server has fully stopped (call {!stop} first, or
    rely on {!install_signal_handlers}). *)

val install_signal_handlers : t -> unit
(** SIGTERM and SIGINT trigger [stop t]; SIGPIPE is ignored (a client
    hanging up mid-response must not kill the process). *)
