(** Multi-process trace assembly.

    Each process in a distributed run exports its own Chrome trace with
    a wall-clock epoch in the metadata.  The coordinator additionally
    records one [dist.clock] instant per remote round trip, carrying an
    NTP-style clock-offset estimate for that endpoint.  [merge] places
    every worker's events on the coordinator's timeline (epoch
    difference minus estimated offset), gives workers fresh
    deterministic pids, and [validate] checks the result is one
    coherent trace. *)

type process = {
  label : string option;
  pid : int;
  epoch : float;  (** wall-clock seconds at this process's ts = 0 *)
  trace : string;  (** trace id (the coordinator's id propagates) *)
  events : Event.t list;
}

val offset :
  t_send:float -> t_recv:float -> t_reply_sent:float -> t_reply_recv:float ->
  float
(** Estimated (remote clock − local clock) in seconds from one
    request/response envelope, assuming symmetric network delay. *)

val endpoint_offsets : Event.t list -> (string * float) list
(** Per-endpoint median clock delta from [dist.clock] instants,
    endpoint-sorted. *)

val worker_offset : endpoints:(string * float) list -> process -> float
(** Offset for one worker, matched to an endpoint by port suffix
    (0 when unmatched). *)

val merge :
  base:process -> workers:process list -> Event.t list * (int * string) list
(** Merged events on the base timeline plus the pid → label table.
    Worker [i] gets pid [base.pid + 1 + i]; per-process metadata events
    are dropped (labels carry the information). *)

val validate :
  ?slack_us:float -> coordinator_pid:int -> Event.t list -> string list
(** Errors found in a merged trace: unbalanced begin/ends, remote spans
    whose propagated parent id the coordinator never emitted, or remote
    spans escaping their parent's interval by more than [slack_us]
    (default 50 ms).  Empty for a coherent trace. *)

val export : path:string -> ?labels:(int * string) list -> Event.t list -> int
(** Write events (timestamp order) as a Chrome trace-event JSON file
    with process_name metadata from [labels]; returns the event
    count. *)
