(** Pareto dominance, fast non-dominated sorting, crowding distance and
    front-quality indicators — the machinery behind NSGA-II (Deb 2001)
    and the evaluation metrics used in the benches. *)

type dominance = Dominates | Dominated | Incomparable

val compare_dominance : Problem.evaluation -> Problem.evaluation -> dominance
(** Deb constraint-domination: a feasible point dominates an infeasible
    one; between infeasible points, lower violation dominates; between
    feasible points, standard Pareto dominance over the objective
    vectors. *)

val non_dominated_sort : Problem.evaluation array -> int array * int array array
(** [(ranks, fronts)]: [ranks.(i)] is the 0-based front index of point
    [i]; [fronts.(k)] lists the point indices of front [k] in input
    order.  O(M N²) fast non-dominated sort. *)

val crowding_distance :
  Problem.evaluation array -> int array -> float array
(** [crowding_distance evals front] returns one distance per member of
    [front] (boundary points get [infinity]). *)

val non_dominated : Problem.evaluation array -> int array
(** Indices of front 0 only. *)

val filter_front : ('a * Problem.evaluation) array -> ('a * Problem.evaluation) array
(** Keep the non-dominated, feasible subset of tagged evaluations. *)

val hypervolume_2d :
  reference:float array -> Problem.evaluation array -> float
(** Exact hypervolume of the minimisation front w.r.t. [reference]
    (points not strictly dominating the reference are ignored).
    @raise Invalid_argument unless all points have 2 objectives. *)

val hypervolume_mc :
  ?samples:int ->
  prng:Repro_util.Prng.t ->
  reference:float array ->
  ideal:float array ->
  Problem.evaluation array ->
  float
(** Monte-Carlo hypervolume estimate for any dimension (used by tests
    and ablation benches on 3+ objective fronts). *)

val spread_2d : Problem.evaluation array -> float
(** Deb's ∆ spread/diversity metric on a 2-objective front (lower is
    better). Returns 0 for fronts with < 3 points. *)
