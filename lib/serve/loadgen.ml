module Histogram = Repro_obs.Histogram

type mode = Closed | Open_target of float

type result = {
  mode : string;
  connections : int;
  window : float;
  requests : int;
  errors : int;
  qps : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

let mode_label = function
  | Closed -> "closed"
  | Open_target q -> Printf.sprintf "open@%g" q

let run ?(mode = Closed) ?(connections = 4) ?(duration = 2.0) ?(warmup = 0.25)
    ?(host = "127.0.0.1") ~port ~target ~body () =
  let connections = max 1 connections in
  let duration = max 0.05 duration in
  let warmup = max 0.0 warmup in
  (* sub-ms latencies live at the bottom of the default range; use the
     same fine-grained bucketing as the serve bench *)
  let hist = Histogram.create ~buckets:120 ~lo:1e-5 ~hi:10.0 () in
  let errors = Atomic.make 0 in
  let start = Unix.gettimeofday () in
  let warm_until = start +. warmup in
  let deadline = warm_until +. duration in
  let worker slot () =
    (* no transparent retries: a failed request must count as an error,
       not be silently replayed into the latency distribution *)
    let client = Client.create ~host ~port ~retries:0 () in
    (match mode with
    | Closed ->
      let rec loop () =
        let t0 = Unix.gettimeofday () in
        if t0 < deadline then begin
          (match Client.post client target ~body with
          | Ok { Http.status = 200; _ } ->
            if t0 >= warm_until then
              Histogram.observe hist (Unix.gettimeofday () -. t0)
          | Ok _ | Error _ ->
            if t0 >= warm_until then Atomic.incr errors);
          loop ()
        end
      in
      loop ()
    | Open_target total_qps ->
      (* each connection fires at its share of the target rate on a
         fixed schedule; latency is measured from the scheduled send
         slot, so server-side queueing delay is charged to the server
         (the defining property of an open-loop generator) *)
      let rate = Float.max 0.1 (total_qps /. float_of_int connections) in
      let period = 1.0 /. rate in
      (* stagger connections so the fleet doesn't fire in phase *)
      let first = start +. (period *. float_of_int slot /. float_of_int connections) in
      let rec loop k =
        let slot_time = first +. (period *. float_of_int k) in
        if slot_time < deadline then begin
          let now = Unix.gettimeofday () in
          if slot_time > now then Thread.delay (slot_time -. now);
          (match Client.post client target ~body with
          | Ok { Http.status = 200; _ } ->
            if slot_time >= warm_until then
              Histogram.observe hist (Unix.gettimeofday () -. slot_time)
          | Ok _ | Error _ ->
            if slot_time >= warm_until then Atomic.incr errors);
          loop (k + 1)
        end
      in
      loop 0);
    Client.shutdown client
  in
  let threads = List.init connections (fun i -> Thread.create (worker i) ()) in
  List.iter Thread.join threads;
  let finished = Unix.gettimeofday () in
  let window = finished -. Float.max warm_until start in
  let s = Histogram.stats hist in
  {
    mode = mode_label mode;
    connections;
    window;
    requests = s.Histogram.count;
    errors = Atomic.get errors;
    qps = float_of_int s.Histogram.count /. Float.max window 1e-9;
    p50_ms = 1e3 *. s.Histogram.p50;
    p90_ms = 1e3 *. s.Histogram.p90;
    p99_ms = 1e3 *. s.Histogram.p99;
    max_ms = 1e3 *. s.Histogram.max;
  }

let pp out r =
  Printf.fprintf out
    "%s, %d conn(s): %d req in %.2fs  %8.0f qps  p50 %6.2f ms  p99 %6.2f ms  \
     max %6.2f ms  errors %d"
    r.mode r.connections r.requests r.window r.qps r.p50_ms r.p99_ms r.max_ms
    r.errors
