open Ast

(* ---- token cursor over one card ----------------------------------- *)

type stream = {
  toks : Lexer.token array;
  mutable i : int;
  file : string option;
}

let of_card file toks = { toks = Array.of_list toks; i = 0; file }
let peek st = if st.i < Array.length st.toks then Some st.toks.(st.i) else None

let last_pos st =
  if Array.length st.toks = 0 then { Loc.line = 1; col = 1 }
  else st.toks.(Array.length st.toks - 1).Lexer.pos

let next st what =
  match peek st with
  | Some t ->
    st.i <- st.i + 1;
    t
  | None -> Loc.fail ?file:st.file (last_pos st) "expected %s, got end of card" what

let fail_tok st (t : Lexer.token) fmt = ignore st; Loc.fail ?file:st.file t.Lexer.pos fmt

let expect st text =
  let t = next st (Printf.sprintf "%S" text) in
  if t.Lexer.text <> text then
    fail_tok st t "expected %S, got %S" text t.Lexer.text

let at_end st = st.i >= Array.length st.toks

let is_ident s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

(* ---- expressions --------------------------------------------------- *)

(* inside braces: expr := term (('+'|'-') term)*
                  term := unary (('*'|'/') unary)*
                  unary := ('-'|'+') unary | primary
                  primary := number | ident | ident '(' args ')' | '(' expr ')' *)
let rec parse_expr st =
  let lhs = parse_term st in
  let rec loop lhs =
    match peek st with
    | Some { Lexer.text = "+"; _ } ->
      st.i <- st.i + 1;
      loop (Add (lhs, parse_term st))
    | Some { Lexer.text = "-"; _ } ->
      st.i <- st.i + 1;
      loop (Sub (lhs, parse_term st))
    | _ -> lhs
  in
  loop lhs

and parse_term st =
  let lhs = parse_unary st in
  let rec loop lhs =
    match peek st with
    | Some { Lexer.text = "*"; _ } ->
      st.i <- st.i + 1;
      loop (Mul (lhs, parse_unary st))
    | Some { Lexer.text = "/"; pos } ->
      st.i <- st.i + 1;
      loop (Div (lhs, parse_unary st, pos))
    | _ -> lhs
  in
  loop lhs

and parse_unary st =
  match peek st with
  | Some { Lexer.text = "-"; _ } ->
    st.i <- st.i + 1;
    Neg (parse_unary st)
  | Some { Lexer.text = "+"; _ } ->
    st.i <- st.i + 1;
    parse_unary st
  | _ -> parse_primary st

and parse_primary st =
  let t = next st "an expression" in
  match t.Lexer.text with
  | "(" ->
    let e = parse_expr st in
    expect st ")";
    e
  | tok -> (
    match Repro_util.Si.parse_opt tok with
    | Some v -> Num v
    | None ->
      if not (is_ident tok) then
        fail_tok st t "expected a number or parameter, got %S" tok
      else
        let name = String.lowercase_ascii tok in
        (* function call when a '(' follows directly *)
        (match peek st with
        | Some { Lexer.text = "("; _ } ->
          st.i <- st.i + 1;
          let rec args acc =
            let e = parse_expr st in
            match next st "',' or ')'" with
            | { Lexer.text = ")"; _ } -> List.rev (e :: acc)
            | { Lexer.text = ","; _ } -> args (e :: acc)
            | t -> fail_tok st t "expected ',' or ')', got %S" t.Lexer.text
          in
          Call (name, args [], t.Lexer.pos)
        | _ -> Ref (name, t.Lexer.pos)))

let expr_of_tokens ?file toks =
  let st = of_card file toks in
  let e = parse_expr st in
  (match peek st with
  | Some t -> fail_tok st t "trailing %S after expression" t.Lexer.text
  | None -> ());
  e

(* a value in card position: a plain SPICE number, a bare parameter
   name, or a braced expression *)
let parse_value st =
  let t = next st "a value" in
  match t.Lexer.text with
  | "{" ->
    let e = parse_expr st in
    expect st "}";
    e
  | tok -> (
    match Repro_util.Si.parse_opt tok with
    | Some v -> Num v
    | None ->
      if is_ident tok then Ref (String.lowercase_ascii tok, t.Lexer.pos)
      else fail_tok st t "bad numeric value %S" tok)

(* .param right-hand side: value, or the {range lo hi} template *)
let parse_pvalue ~allow_range st =
  match peek st with
  | Some { Lexer.text = "{"; _ } -> (
    st.i <- st.i + 1;
    match peek st with
    | Some ({ Lexer.text = t; _ } as tok)
      when String.lowercase_ascii t = "range" ->
      if not allow_range then
        fail_tok st tok
          "{range lo hi} templates are only allowed in top-level .param \
           cards";
      st.i <- st.i + 1;
      let lo = parse_expr st in
      let hi = parse_expr st in
      expect st "}";
      Range (lo, hi)
    | _ ->
      let e = parse_expr st in
      expect st "}";
      Value e)
  | _ -> Value (parse_value st)

(* ---- cards ---------------------------------------------------------- *)

(* split the remaining tokens into positional tokens and key=value
   pairs: positionals end at the first token followed by "=" *)
let split_positional st =
  let positional = ref [] in
  let rec loop () =
    match peek st with
    | None -> ()
    | Some t ->
      let is_key =
        st.i + 1 < Array.length st.toks
        && st.toks.(st.i + 1).Lexer.text = "="
      in
      if is_key then ()
      else begin
        st.i <- st.i + 1;
        positional := t :: !positional;
        loop ()
      end
  in
  loop ();
  List.rev !positional

let rec parse_assignments ?(allow_range = false) st acc =
  if at_end st then List.rev acc
  else begin
    let key = next st "parameter name" in
    if not (is_ident key.Lexer.text) then
      fail_tok st key "expected param=value, got %S" key.Lexer.text;
    expect st "=";
    let v = parse_pvalue ~allow_range st in
    parse_assignments ~allow_range st
      ({ p_name = String.lowercase_ascii key.Lexer.text;
         p_pos = key.Lexer.pos; p_value = v }
      :: acc)
  end

(* key=value pairs where the value must be a plain expression *)
let parse_overrides st =
  parse_assignments st []
  |> List.map (fun p ->
         match p.p_value with
         | Value e -> (p.p_name, e)
         | Range _ ->
           Loc.fail ?file:st.file p.p_pos
             "{range lo hi} templates are only allowed in top-level .param \
              cards")

let parse_source st (card : Lexer.token) =
  if at_end st then fail_tok st card "missing source value";
  let kind = st.toks.(st.i) in
  let rec values acc =
    if at_end st then List.rev acc else values (parse_value st :: acc)
  in
  match String.lowercase_ascii kind.Lexer.text with
  | "dc" ->
    st.i <- st.i + 1;
    let v = parse_value st in
    if not (at_end st) then fail_tok st kind "DC source takes exactly one value";
    Dc v
  | "pulse" ->
    st.i <- st.i + 1;
    let vs = values [] in
    if List.length vs <> 6 && List.length vs <> 7 then
      fail_tok st kind "PULSE needs 6 or 7 values, got %d" (List.length vs);
    Pulse vs
  | "sin" ->
    st.i <- st.i + 1;
    let vs = values [] in
    if List.length vs <> 3 && List.length vs <> 6 then
      fail_tok st kind "SIN needs 3 or 6 values, got %d" (List.length vs);
    Sin vs
  | "pwl" ->
    st.i <- st.i + 1;
    let vs = values [] in
    if List.length vs = 0 || List.length vs mod 2 <> 0 then
      fail_tok st kind "PWL needs an even number of values";
    Pwl vs
  | _ ->
    let v = parse_value st in
    if not (at_end st) then
      fail_tok st kind "unsupported source %S or wrong argument count"
        kind.Lexer.text;
    Dc v

let node_tok st what =
  let t = next st what in
  match t.Lexer.text with
  | "{" | "}" | "=" | "(" | ")" ->
    fail_tok st t "expected %s, got %S" what t.Lexer.text
  | text -> text

let parse_element st (card : Lexer.token) =
  let name = card.Lexer.text in
  let pos = card.Lexer.pos in
  match Char.lowercase_ascii name.[0] with
  | 'r' | 'c' ->
    let n1 = node_tok st "a node" in
    let n2 = node_tok st "a node" in
    let value = parse_value st in
    if not (at_end st) then
      fail_tok st card "%c card needs: name n1 n2 value"
        (Char.uppercase_ascii name.[0]);
    if Char.lowercase_ascii name.[0] = 'r' then R { name; pos; n1; n2; value }
    else C { name; pos; n1; n2; value }
  | 'v' | 'i' ->
    let npos = node_tok st "a node" in
    let nneg = node_tok st "a node" in
    let src = parse_source st card in
    if Char.lowercase_ascii name.[0] = 'v' then V { name; pos; npos; nneg; src }
    else I { name; pos; npos; nneg; src }
  | 'm' -> begin
    let positional = split_positional st in
    let params = parse_overrides st in
    let d, g, s, bulk, model =
      match positional with
      | [ d; g; s; m ] -> (d, g, s, None, m)
      | [ d; g; s; b; m ] -> (d, g, s, Some b.Lexer.text, m)
      | _ -> fail_tok st card "M card needs: name d g s [b] model W= L="
    in
    let find key =
      match List.assoc_opt key params with
      | Some v -> v
      | None -> fail_tok st card "M card missing %s=" (String.uppercase_ascii key)
    in
    M
      {
        name;
        pos;
        drain = d.Lexer.text;
        gate = g.Lexer.text;
        source = s.Lexer.text;
        bulk;
        model = model.Lexer.text;
        model_pos = model.Lexer.pos;
        w = find "w";
        l = find "l";
      }
  end
  | 'x' -> begin
    let positional = split_positional st in
    let overrides = parse_overrides st in
    match List.rev positional with
    | [] | [ _ ] -> fail_tok st card "X card needs nodes and a subcircuit name"
    | sub :: rev_nodes ->
      X
        {
          name;
          pos;
          nodes = List.rev_map (fun (t : Lexer.token) -> t.Lexer.text) rev_nodes;
          sub = String.lowercase_ascii sub.Lexer.text;
          sub_pos = sub.Lexer.pos;
          overrides;
        }
  end
  | _ -> fail_tok st card "unknown card %S" name

let parse_model st (card : Lexer.token) =
  let name = next st "a model name" in
  let kind = next st "a model kind" in
  let m_kind =
    match String.lowercase_ascii kind.Lexer.text with
    | "nmos" -> `Nmos
    | "pmos" -> `Pmos
    | k -> fail_tok st kind "unknown model kind %S" k
  in
  let m_params =
    parse_assignments st []
    |> List.map (fun p ->
           match p.p_value with
           | Value e -> (p.p_name, p.p_pos, e)
           | Range _ ->
             Loc.fail ?file:st.file p.p_pos
               "{range lo hi} templates are only allowed in top-level .param \
                cards")
  in
  ignore card;
  { m_name = name.Lexer.text; m_pos = name.Lexer.pos; m_kind; m_params }

(* ---- deck ----------------------------------------------------------- *)

type accum = {
  mutable a_elements : element list;  (* reversed *)
  mutable a_subs : subckt list;       (* reversed *)
  mutable a_params : param_def list;  (* reversed *)
}

let deck ?file text =
  let cards = Array.of_list (Lexer.tokenize ?file text) in
  let models = ref [] in
  let cursor = ref 0 in
  (* parse cards into [acc] until EOF (depth 0) or the matching .ends;
     .subckt recurses, so definitions nest to any depth *)
  let rec parse_body ~top ~opened acc =
    if !cursor >= Array.length cards then
      match opened with
      | None -> ()
      | Some (name, pos) ->
        Loc.fail ?file pos ".subckt %s has no matching .ends" name
    else begin
      let card = cards.(!cursor) in
      incr cursor;
      match card with
      | [] -> parse_body ~top ~opened acc
      | head :: rest -> (
        let st = of_card file rest in
        let lc = String.lowercase_ascii head.Lexer.text in
        if String.length lc > 0 && lc.[0] = '.' then
          match lc with
          | ".end" -> parse_body ~top ~opened acc
          | ".ends" -> (
            match opened with
            | Some _ -> () (* closes this body; caller resumes *)
            | None -> fail_tok st head ".ends without a matching .subckt")
          | ".param" ->
            let defs = parse_assignments ~allow_range:top st [] in
            if defs = [] then fail_tok st head ".param needs name = value";
            acc.a_params <- List.rev_append defs acc.a_params;
            parse_body ~top ~opened acc
          | ".model" ->
            models := parse_model st head :: !models;
            parse_body ~top ~opened acc
          | ".subckt" -> (
            match peek st with
            | None -> fail_tok st head ".subckt needs a name"
            | Some name_tok ->
              st.i <- st.i + 1;
              let ports = split_positional st in
              let defaults =
                parse_assignments st []
                |> List.map (fun p ->
                       match p.p_value with
                       | Value _ -> p
                       | Range _ ->
                         Loc.fail ?file p.p_pos
                           "{range lo hi} templates are only allowed in \
                            top-level .param cards")
              in
              let body =
                { a_elements = []; a_subs = []; a_params = List.rev defaults }
              in
              let s_name = String.lowercase_ascii name_tok.Lexer.text in
              parse_body ~top:false ~opened:(Some (s_name, name_tok.Lexer.pos))
                body;
              acc.a_subs <-
                {
                  s_name;
                  s_pos = name_tok.Lexer.pos;
                  ports =
                    List.map (fun (t : Lexer.token) -> t.Lexer.text) ports;
                  s_params = List.rev body.a_params;
                  s_elements = List.rev body.a_elements;
                  s_subs = List.rev body.a_subs;
                }
                :: acc.a_subs;
              parse_body ~top ~opened acc)
          | d ->
            fail_tok st head "unsupported directive %S" d
        else begin
          acc.a_elements <- parse_element st head :: acc.a_elements;
          parse_body ~top ~opened acc
        end)
    end
  in
  let acc = { a_elements = []; a_subs = []; a_params = [] } in
  parse_body ~top:true ~opened:None acc;
  {
    elements = List.rev acc.a_elements;
    subs = List.rev acc.a_subs;
    models = List.rev !models;
    params = List.rev acc.a_params;
  }

let deck_of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> deck ~file:path (In_channel.input_all ic))
