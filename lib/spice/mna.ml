module Netlist = Repro_circuit.Netlist
module Mosfet = Repro_circuit.Mosfet
module Source = Repro_circuit.Source
module Vec = Repro_linalg.Vec
module Matrix = Repro_linalg.Matrix
module Lu = Repro_linalg.Lu

type res = { ra : int; rb : int; g : float }
type cap = { ca : int; cb : int; cval : float }
type vsrc = { vpos : int; vneg : int; vwave : Source.t; branch : int }
type isrc = { ipos : int; ineg : int; iwave : Source.t }

type mos = {
  md : int;
  mg : int;
  ms : int;
  model : Mosfet.model;
  w : float;
  l : float;
  vth_shift : float;
  kp_scale : float;
}

type compiled = {
  net : Netlist.t;
  n_nodes : int;
  n_branches : int;
  size : int;
  resistors : res array;
  caps : cap array;
  vsources : vsrc array;
  isources : isrc array;
  mosfets : mos array;
  branch_of_name : (string, int) Hashtbl.t;
}

(* unknown index of a node id; ground (0) maps to -1 meaning "eliminated" *)
let ui node = node - 1

let compile net =
  let resistors = ref [] and caps = ref [] in
  let vsources = ref [] and isources = ref [] and mosfets = ref [] in
  let branch_of_name = Hashtbl.create 4 in
  let n_branches = ref 0 in
  List.iter
    (fun el ->
      match el with
      | Netlist.Resistor { n1; n2; value; name } ->
        if value <= 0.0 then
          invalid_arg (Printf.sprintf "Mna.compile: non-positive resistor %s" name);
        resistors := { ra = ui n1; rb = ui n2; g = 1.0 /. value } :: !resistors
      | Netlist.Capacitor { n1; n2; value; _ } ->
        caps := { ca = ui n1; cb = ui n2; cval = value } :: !caps
      | Netlist.Vsource { npos; nneg; source; name } ->
        let branch = !n_branches in
        incr n_branches;
        Hashtbl.replace branch_of_name name branch;
        vsources := { vpos = ui npos; vneg = ui nneg; vwave = source; branch } :: !vsources
      | Netlist.Isource { npos; nneg; source; _ } ->
        isources := { ipos = ui npos; ineg = ui nneg; iwave = source } :: !isources
      | Netlist.Mos { drain; gate; source; model; w; l; vth_shift; kp_scale; _ } ->
        mosfets :=
          { md = ui drain; mg = ui gate; ms = ui source; model; w; l; vth_shift; kp_scale }
          :: !mosfets;
        (* expand bias-independent parasitics; bulks sit at AC ground *)
        let c = Mosfet.capacitances model ~w ~l in
        caps :=
          { ca = ui gate; cb = ui source; cval = c.Mosfet.cgs }
          :: { ca = ui gate; cb = ui drain; cval = c.Mosfet.cgd }
          :: { ca = ui drain; cb = -1; cval = c.Mosfet.cdb }
          :: { ca = ui source; cb = -1; cval = c.Mosfet.csb }
          :: !caps)
    (Netlist.elements net);
  let n_nodes = Netlist.node_count net in
  {
    net;
    n_nodes;
    n_branches = !n_branches;
    size = n_nodes - 1 + !n_branches;
    resistors = Array.of_list (List.rev !resistors);
    caps = Array.of_list (List.rev !caps);
    vsources = Array.of_list (List.rev !vsources);
    isources = Array.of_list (List.rev !isources);
    mosfets = Array.of_list (List.rev !mosfets);
    branch_of_name;
  }

let size c = c.size

let node_index c node =
  if node <= 0 then None
  else if node >= c.n_nodes then invalid_arg "Mna.node_index: bad node"
  else Some (node - 1)

let node_of_name c name =
  match Netlist.find_node c.net name with
  | Some n -> n
  | None -> raise Not_found

let branch_index c name =
  match Hashtbl.find_opt c.branch_of_name name with
  | Some b -> c.n_nodes - 1 + b
  | None -> raise Not_found

let cap_count c = Array.length c.caps

let volt x i = if i < 0 then 0.0 else x.(i)

let cap_voltage c i x =
  let cap = c.caps.(i) in
  volt x cap.ca -. volt x cap.cb

let cap_value c i = c.caps.(i).cval

let capacitance_stamps c =
  Array.map (fun { ca; cb; cval } -> (ca, cb, cval)) c.caps

type cap_mode =
  | Dc
  | Companion of { geq : float array; ieq : float array }

(* accumulate into row [i] only when it is a real unknown *)
let addf residual i v = if i >= 0 then residual.(i) <- residual.(i) +. v
let addj jac i j v = if i >= 0 && j >= 0 then Matrix.add_to jac i j v

let assemble ?(injections = [||]) c ~x ~time ~gmin ~source_scale ~cap_mode ~jacobian ~residual =
  Matrix.clear jacobian;
  Vec.fill residual 0.0;
  let nb_base = c.n_nodes - 1 in
  (* resistors *)
  Array.iter
    (fun { ra; rb; g } ->
      let i = g *. (volt x ra -. volt x rb) in
      addf residual ra i;
      addf residual rb (-.i);
      addj jacobian ra ra g;
      addj jacobian rb rb g;
      addj jacobian ra rb (-.g);
      addj jacobian rb ra (-.g))
    c.resistors;
  (* capacitors *)
  (match cap_mode with
  | Dc -> ()
  | Companion { geq; ieq } ->
    Array.iteri
      (fun k { ca; cb; _ } ->
        let g = geq.(k) in
        let i = (g *. (volt x ca -. volt x cb)) +. ieq.(k) in
        addf residual ca i;
        addf residual cb (-.i);
        addj jacobian ca ca g;
        addj jacobian cb cb g;
        addj jacobian ca cb (-.g);
        addj jacobian cb ca (-.g))
      c.caps);
  (* voltage sources: branch current row + KVL row *)
  Array.iter
    (fun { vpos; vneg; vwave; branch } ->
      let bi = nb_base + branch in
      let ib = x.(bi) in
      addf residual vpos ib;
      addf residual vneg (-.ib);
      addj jacobian vpos bi 1.0;
      addj jacobian vneg bi (-1.0);
      let e = source_scale *. Source.value vwave time in
      residual.(bi) <- volt x vpos -. volt x vneg -. e;
      addj jacobian bi vpos 1.0;
      addj jacobian bi vneg (-1.0);
      (* ground-referenced entries when a terminal is ground are skipped by
         addj; the branch row still needs a diagonal-free entry, which the
         terms above provide unless both terminals are ground *)
      if vpos < 0 && vneg < 0 then Matrix.add_to jacobian bi bi 1.0)
    c.vsources;
  (* current sources *)
  Array.iter
    (fun { ipos; ineg; iwave } ->
      let i = source_scale *. Source.value iwave time in
      addf residual ipos i;
      addf residual ineg (-.i))
    c.isources;
  (* MOSFETs *)
  Array.iter
    (fun m ->
      let vd = volt x m.md and vg = volt x m.mg and vs = volt x m.ms in
      (* orient so the internal "drain" is the high node of the channel *)
      let polarity = m.model.Mosfet.polarity in
      let hi, lo, vhi, vlo =
        match polarity with
        | Mosfet.Nmos ->
          if vd >= vs then (m.md, m.ms, vd, vs) else (m.ms, m.md, vs, vd)
        | Mosfet.Pmos ->
          if vs >= vd then (m.ms, m.md, vs, vd) else (m.md, m.ms, vd, vs)
      in
      let vds = vhi -. vlo in
      let vgs =
        match polarity with
        | Mosfet.Nmos -> vg -. vlo
        | Mosfet.Pmos -> vhi -. vg
      in
      let { Mosfet.ids; gm; gds } =
        Mosfet.eval m.model ~w:m.w ~l:m.l ~vth_shift:m.vth_shift
          ~kp_scale:m.kp_scale ~vgs ~vds
      in
      (* current flows hi -> lo through the channel *)
      addf residual hi ids;
      addf residual lo (-.ids);
      (* d ids / d node voltages, per polarity-specific vgs definition *)
      let dhi, dlo, dg =
        match polarity with
        | Mosfet.Nmos ->
          (* vgs = vg - vlo, vds = vhi - vlo *)
          (gds, -.gm -. gds, gm)
        | Mosfet.Pmos ->
          (* vgs = vhi - vg, vds = vhi - vlo *)
          (gm +. gds, -.gds, -.gm)
      in
      addj jacobian hi hi dhi;
      addj jacobian hi lo dlo;
      addj jacobian hi m.mg dg;
      addj jacobian lo hi (-.dhi);
      addj jacobian lo lo (-.dlo);
      addj jacobian lo m.mg (-.dg))
    c.mosfets;
  (* fixed extra currents (transient noise injection) *)
  Array.iter (fun (i, amps) -> addf residual i amps) injections;
  (* gmin from every node to ground *)
  if gmin > 0.0 then
    for i = 0 to nb_base - 1 do
      Matrix.add_to jacobian i i gmin;
      residual.(i) <- residual.(i) +. (gmin *. x.(i))
    done

type newton_report = {
  converged : bool;
  iterations : int;
  max_dx : float;
  max_residual : float;
}

let boltzmann_t = 4.14e-21 (* kT at 300 K *)
let gamma_noise = 2.0 (* short-channel excess noise factor *)

let channel_noise_stamps c ~x =
  Array.map
    (fun m ->
      let vd = volt x m.md and vg = volt x m.mg and vs = volt x m.ms in
      let polarity = m.model.Mosfet.polarity in
      let hi, lo, vhi, vlo =
        match polarity with
        | Mosfet.Nmos ->
          if vd >= vs then (m.md, m.ms, vd, vs) else (m.ms, m.md, vs, vd)
        | Mosfet.Pmos ->
          if vs >= vd then (m.ms, m.md, vs, vd) else (m.md, m.ms, vd, vs)
      in
      let vds = vhi -. vlo in
      let vgs =
        match polarity with
        | Mosfet.Nmos -> vg -. vlo
        | Mosfet.Pmos -> vhi -. vg
      in
      let { Mosfet.gm; _ } =
        Mosfet.eval m.model ~w:m.w ~l:m.l ~vth_shift:m.vth_shift
          ~kp_scale:m.kp_scale ~vgs ~vds
      in
      (hi, lo, sqrt (4.0 *. boltzmann_t *. gamma_noise *. Float.max gm 0.0)))
    c.mosfets

let newton ?(max_iter = 50) ?(vtol = 1e-6) ?(rtol = 1e-6) ?(itol = 1e-9)
    ?(dv_limit = 0.5) ?injections c ~x ~time ~gmin ~source_scale ~cap_mode =
  let n = c.size in
  let jacobian = Matrix.create n n in
  let residual = Vec.create n in
  let nb_base = c.n_nodes - 1 in
  let rec loop iter last_dx =
    assemble ?injections c ~x ~time ~gmin ~source_scale ~cap_mode ~jacobian
      ~residual;
    let max_res =
      let acc = ref 0.0 in
      for i = 0 to nb_base - 1 do
        acc := Float.max !acc (Float.abs residual.(i))
      done;
      !acc
    in
    if last_dx < vtol +. (rtol *. Vec.norm_inf x) && max_res < itol && iter > 0
    then { converged = true; iterations = iter; max_dx = last_dx; max_residual = max_res }
    else if iter >= max_iter then
      { converged = false; iterations = iter; max_dx = last_dx; max_residual = max_res }
    else begin
      match Lu.solve jacobian (Array.map (fun r -> -.r) residual) with
      | exception Lu.Singular _ ->
        { converged = false; iterations = iter; max_dx = last_dx; max_residual = max_res }
      | dx ->
        (* damp on node-voltage updates only *)
        let max_node_dx = ref 0.0 in
        for i = 0 to nb_base - 1 do
          max_node_dx := Float.max !max_node_dx (Float.abs dx.(i))
        done;
        let alpha = if !max_node_dx > dv_limit then dv_limit /. !max_node_dx else 1.0 in
        Vec.axpy ~alpha dx x;
        loop (iter + 1) (alpha *. Float.max !max_node_dx (Vec.norm_inf dx))
    end
  in
  loop 0 infinity
