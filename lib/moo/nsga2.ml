module Prng = Repro_util.Prng

type individual = {
  x : float array;
  evaluation : Problem.evaluation;
}

type options = {
  population : int;
  generations : int;
  crossover_prob : float;
  eta_crossover : float;
  mutation_prob : float;
  eta_mutation : float;
}

let default_options =
  {
    population = 100;
    generations = 30;
    crossover_prob = 0.9;
    eta_crossover = 15.0;
    mutation_prob = 0.0;
    eta_mutation = 20.0;
  }

let evaluations pop = Array.map (fun ind -> ind.evaluation) pop

(* (rank, crowding) tournament comparison: lower rank wins; ties by
   larger crowding distance *)
let tournament prng ranks crowd pop =
  let n = Array.length pop in
  let a = Prng.int prng n and b = Prng.int prng n in
  if ranks.(a) < ranks.(b) then a
  else if ranks.(b) < ranks.(a) then b
  else if crowd.(a) > crowd.(b) then a
  else b

(* per-individual crowding over the whole population, front by front *)
let population_crowding evals fronts =
  let crowd = Array.make (Array.length evals) 0.0 in
  Array.iter
    (fun front ->
      let d = Pareto.crowding_distance evals front in
      Array.iteri (fun k i -> crowd.(i) <- d.(k)) front)
    fronts;
  crowd

(* environmental selection: best [target] individuals by (rank, crowding) *)
let select_best target pop =
  let evals = evaluations pop in
  let ranks, fronts = Pareto.non_dominated_sort evals in
  let crowd = population_crowding evals fronts in
  let order = Array.init (Array.length pop) (fun i -> i) in
  Array.sort
    (fun a b ->
      if ranks.(a) <> ranks.(b) then compare ranks.(a) ranks.(b)
      else compare crowd.(b) crowd.(a))
    order;
  Array.init target (fun k -> pop.(order.(k)))

(* batch-evaluate raw decision vectors into individuals, via the
   injected evaluation strategy (parallel pools, caches, ...) *)
let eval_batch evaluator problem xs =
  let evs = Problem.evaluate_all ~evaluator problem xs in
  Array.map2 (fun x evaluation -> { x; evaluation }) xs evs

(* ---- step-wise API ------------------------------------------------ *)

type state = {
  options : options;
  prng : Prng.t;
  mutable generation : int;
  mutable population : individual array;
}

let generation st = st.generation
let population st = st.population

let init ?(options = default_options) ?(evaluator = Problem.serial_evaluator)
    problem prng =
  if options.population < 4 || options.population mod 2 <> 0 then
    invalid_arg "Nsga2.optimise: population must be even and >= 4";
  (* decision vectors are drawn serially (PRNG order is part of the
     reproducibility contract); only the pure evaluations are batched *)
  let initial = Array.make options.population [||] in
  for i = 0 to options.population - 1 do
    initial.(i) <- Problem.random_point problem prng
  done;
  { options; prng; generation = 0;
    population = eval_batch evaluator problem initial }

let step ?(evaluator = Problem.serial_evaluator) problem st =
  Repro_obs.Trace.span "nsga2.generation"
    ~args:
      [
        ("problem", problem.Problem.name);
        ("generation", string_of_int (st.generation + 1));
      ]
  @@ fun () ->
  let options = st.options and prng = st.prng in
  let pm =
    if options.mutation_prob > 0.0 then options.mutation_prob
    else 1.0 /. float_of_int (Problem.n_vars problem)
  in
  let pop = st.population in
  let evals = evaluations pop in
  let ranks, fronts = Pareto.non_dominated_sort evals in
  let crowd = population_crowding evals fronts in
  (* offspring *)
  let children = ref [] in
  for _ = 1 to options.population / 2 do
    let p1 = pop.(tournament prng ranks crowd pop).x in
    let p2 = pop.(tournament prng ranks crowd pop).x in
    let c1, c2 =
      Variation.crossover_pair prng ~bounds:problem.Problem.bounds
        ~crossover_prob:options.crossover_prob
        ~eta_crossover:options.eta_crossover p1 p2
    in
    let mutate c =
      Variation.mutate_in_place prng ~bounds:problem.Problem.bounds
        ~mutation_prob:pm ~eta_mutation:options.eta_mutation c
    in
    mutate c1;
    mutate c2;
    children := c1 :: c2 :: !children
  done;
  let offspring = eval_batch evaluator problem (Array.of_list !children) in
  let combined = Array.append pop offspring in
  st.population <- select_best options.population combined;
  st.generation <- st.generation + 1

let optimise ?options ?evaluator ?on_generation problem prng =
  let st = init ?options ?evaluator problem prng in
  (match on_generation with Some f -> f 0 st.population | None -> ());
  while st.generation < st.options.generations do
    step ?evaluator problem st;
    match on_generation with
    | Some f -> f st.generation st.population
    | None -> ()
  done;
  st.population

(* ---- state serialisation ------------------------------------------ *)
(* An individual is one flat row: x | constraint_violation | objectives.
   The split points are recovered from the problem's n_vars, so a row of
   the wrong arity fails decoding instead of mis-slicing. *)

let encode_individual ind =
  Array.concat
    [ ind.x; [| ind.evaluation.Problem.constraint_violation |];
      ind.evaluation.Problem.objectives ]

let decode_individual ~n_vars row =
  let len = Array.length row in
  if len < n_vars + 1 then None
  else
    Some
      {
        x = Array.sub row 0 n_vars;
        evaluation =
          {
            Problem.constraint_violation = row.(n_vars);
            objectives = Array.sub row (n_vars + 1) (len - n_vars - 1);
          };
      }

module Snapshot = Repro_engine.Snapshot

let save_state st snap ~key =
  Snapshot.set_int snap (key ^ ".generation") st.generation;
  Snapshot.set_bits snap (key ^ ".prng") (Prng.to_bits st.prng);
  Snapshot.set_rows snap (key ^ ".population")
    (Array.map encode_individual st.population)

let clear_state snap ~key =
  Snapshot.remove snap (key ^ ".generation");
  Snapshot.remove snap (key ^ ".prng");
  Snapshot.remove snap (key ^ ".population")

let restore_state ~options problem snap ~key =
  match
    ( Snapshot.get_int snap (key ^ ".generation"),
      Snapshot.get_bits snap (key ^ ".prng"),
      Snapshot.get_rows snap (key ^ ".population") )
  with
  | Some generation, Some bits, Some rows -> (
    match Prng.of_bits bits with
    | None -> None
    | Some prng ->
      let n_vars = Problem.n_vars problem in
      let inds = Array.map (decode_individual ~n_vars) rows in
      if
        generation < 0
        || generation > options.generations
        || Array.length inds <> options.population
        || Array.exists Option.is_none inds
      then None
      else
        Some
          { options; prng; generation;
            population = Array.map Option.get inds })
  | _ -> None

let pareto_front pop =
  let evals = evaluations pop in
  let front = Pareto.non_dominated evals in
  let keep =
    Array.to_list front
    |> List.filter (fun i -> Problem.feasible evals.(i))
    |> List.map (fun i -> pop.(i))
  in
  (* deduplicate identical objective vectors *)
  let seen = Hashtbl.create 16 in
  let unique =
    List.filter
      (fun ind ->
        let key =
          String.concat ","
            (Array.to_list
               (Array.map
                  (fun v -> Printf.sprintf "%.9e" v)
                  ind.evaluation.Problem.objectives))
        in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      keep
  in
  Array.of_list unique
