(** Modified nodal analysis: netlist compilation, Jacobian/residual
    assembly and the damped Newton iteration shared by the DC and
    transient engines.

    Unknown vector layout: node voltages for nodes [1 .. n-1] (ground
    eliminated) followed by one branch current per voltage source.
    MOS devices contribute a nonlinear current element plus four linear
    parasitic capacitors (Cgs, Cgd, Cdb, Csb) expanded at compile time. *)

type compiled

val compile : Repro_circuit.Netlist.t -> compiled
val size : compiled -> int
(** Number of MNA unknowns. *)

val node_index : compiled -> Repro_circuit.Netlist.node -> int option
(** Unknown index of a node ([None] for ground). *)

val node_of_name : compiled -> string -> Repro_circuit.Netlist.node
(** @raise Not_found for unknown node names. *)

val branch_index : compiled -> string -> int
(** Unknown index of a voltage source's branch current.
    @raise Not_found for unknown source names. *)

val cap_count : compiled -> int
(** Number of expanded linear capacitors (explicit + MOS parasitics). *)

val cap_voltage : compiled -> int -> Repro_linalg.Vec.t -> float
(** Terminal voltage of capacitor [i] under solution [x]. *)

val cap_value : compiled -> int -> float

val capacitance_stamps : compiled -> (int * int * float) array
(** All linear capacitors as (unknown_a, unknown_b, value) triples with
    -1 for a grounded terminal — the C matrix of the AC analysis. *)

val companion_fill :
  compiled ->
  use_be:bool ->
  h:float ->
  v_prev:float array ->
  i_prev:float array ->
  geq:float array ->
  ieq:float array ->
  unit
(** Fill the per-capacitor companion conductances/currents for one
    integration step of size [h]: backward Euler ([use_be]) or
    trapezoidal from the previous voltage/current history.  One pass
    over the compiled capacitor table — the transient per-step hot
    path. *)

val cap_history :
  compiled ->
  x:Repro_linalg.Vec.t ->
  geq:float array ->
  ieq:float array ->
  v_prev:float array ->
  i_prev:float array ->
  unit
(** Update [v_prev]/[i_prev] from the accepted solution [x] under the
    companion stamps used for the step — the counterpart of
    {!companion_fill}. *)

type cap_mode =
  | Dc
      (** capacitors open-circuit *)
  | Companion of { geq : float array; ieq : float array }
      (** per-capacitor linear companion: i = geq (va - vb) + ieq *)

val assemble :
  ?injections:(int * float) array ->
  compiled ->
  x:Repro_linalg.Vec.t ->
  time:float ->
  gmin:float ->
  source_scale:float ->
  cap_mode:cap_mode ->
  jacobian:Repro_linalg.Matrix.t ->
  residual:Repro_linalg.Vec.t ->
  unit
(** Fill [jacobian] and [residual] (both are cleared first) with
    F(x) = 0 contributions at candidate solution [x].  [gmin] adds a
    conductance from every node to ground; [source_scale] scales all
    independent sources (source-stepping continuation); [injections]
    adds fixed extra currents (unknown index, amps flowing out of the
    node) — the transient-noise hook. *)

type workspace
(** Reusable sparse-solver state (value stores, numeric factors) for a
    sequence of {!newton} calls — a transient's thousands of steps then
    allocate nothing per step and consult the symbolic registry once.
    Lazily bound to the first circuit it is used with (rebinds if the
    circuit changes).  Single-owner: never share across threads.  Purely
    a performance hint; results are identical with or without it. *)

val make_workspace : unit -> workspace

val domain_workspace : unit -> workspace
(** The calling domain's persistent workspace (domain-local storage).
    Monte-Carlo trials dispatched across a pool rebind it from sample to
    sample, so sparse numeric factors survive across structurally
    identical netlists.  Carried factors are used only when they match
    what the symbolic registry would provide, so results stay
    bit-identical to a fresh workspace. *)

val solver_name : ?solver:Repro_engine.Config.solver_mode -> compiled -> string
(** ["dense"] or ["sparse"]: the backend {!newton} will pick for this
    circuit under the given mode (default {!Repro_engine.Config.solver}).
    [Auto] resolves to sparse at or above a small-n threshold. *)

type newton_report = {
  converged : bool;
  iterations : int;
  max_dx : float;     (** final Newton update infinity-norm *)
  max_residual : float;
}

val channel_noise_stamps :
  compiled -> x:Repro_linalg.Vec.t -> (int * int * float) array
(** Per-MOSFET thermal channel noise at operating point [x]:
    [(hi, lo, s)] where a noise current of spectral density
    s = sqrt(4kT·γ·gm) A/√Hz flows between the channel terminals
    (unknown indices, -1 = ground).  Drives the transient-noise
    feature. *)

val newton :
  ?max_iter:int ->
  ?vtol:float ->
  ?rtol:float ->
  ?itol:float ->
  ?dv_limit:float ->
  ?injections:(int * float) array ->
  ?solver:Repro_engine.Config.solver_mode ->
  ?workspace:workspace ->
  compiled ->
  x:Repro_linalg.Vec.t ->
  time:float ->
  gmin:float ->
  source_scale:float ->
  cap_mode:cap_mode ->
  newton_report
(** Damped Newton–Raphson updating [x] in place.  Per-iteration node
    updates are limited to [dv_limit] volts (default 0.5) by step
    scaling.  Convergence requires both the update norm below
    [vtol + rtol * |x|] and the KCL residual below [itol].

    [solver] picks the linear kernel (default
    {!Repro_engine.Config.solver}): the dense LU, or the sparse
    left-looking LU whose symbolic analysis is computed once per
    circuit topology and shared through a registry so Newton
    iterations, timesteps and Monte-Carlo samples only pay a numeric
    refactorisation.  Both kernels share pivot-tolerance semantics, so
    singularity behaviour is identical. *)
