(* AC small-signal analysis and OTA characterisation *)
module C = Repro_circuit
module S = Repro_spice
module Source = C.Source
module Netlist = C.Netlist

let linearised net =
  let cm = S.Mna.compile net in
  let op = S.Dcop.solve cm in
  S.Ac.linearise cm op

let test_rc_transfer_exact () =
  (* RC lowpass: H = 1/(1 + j w R C), analytic at any frequency *)
  let r = 1e3 and c = 1e-9 in
  let ac = linearised (C.Topologies.rc_lowpass ~r ~c ~vin:(Source.Dc 0.0)) in
  List.iter
    (fun f ->
      let h = S.Ac.transfer ac ~input:"Vin" ~output:"out" f in
      let w = 2.0 *. Float.pi *. f in
      let expected = Complex.div Complex.one { re = 1.0; im = w *. r *. c } in
      if Complex.norm (Complex.sub h expected) > 1e-6 then
        Alcotest.failf "RC transfer wrong at %g Hz" f)
    [ 10.0; 1e3; 159.155e3; 1e6; 1e9 ]

let test_rc_3db_and_phase () =
  let ac =
    linearised (C.Topologies.rc_lowpass ~r:1e3 ~c:1e-9 ~vin:(Source.Dc 0.0))
  in
  let fc = 1.0 /. (2.0 *. Float.pi *. 1e-6) in
  let h = S.Ac.transfer ac ~input:"Vin" ~output:"out" fc in
  Alcotest.(check (float 1e-6)) "magnitude at fc" (1.0 /. sqrt 2.0)
    (Complex.norm h);
  Alcotest.(check (float 1e-3)) "phase at fc" (-45.0)
    (Complex.arg h *. 180.0 /. Float.pi)

let test_divider_flat () =
  (* a resistive divider is frequency-independent *)
  let ac = linearised (C.Topologies.voltage_divider ~r1:1e3 ~r2:1e3 ~vin:1.0) in
  List.iter
    (fun f ->
      let h = S.Ac.transfer ac ~input:"Vin" ~output:"out" f in
      Alcotest.(check (float 1e-9)) "flat divider" 0.5 (Complex.norm h))
    [ 1.0; 1e6; 1e12 ]

let test_loop_filter_matches_behave () =
  (* the transistor-level RC network must agree with the behavioural
     Loop_filter impedance: drive the filter through a current source is
     awkward in AC (unit stimulus is a V source), so compare the R1-C1
     series + C2 network's voltage division from a source with series
     resistance instead *)
  let rser = 10e3 and c1 = 5e-12 and c2 = 0.5e-12 and r1 = 4e3 in
  let net = Netlist.create () in
  Netlist.vsource net "Vin" "in" "0" (Source.Dc 0.0);
  Netlist.resistor net "Rs" "in" "vc" rser;
  Netlist.resistor net "R1" "vc" "mid" r1;
  Netlist.capacitor net "C1" "mid" "0" c1;
  Netlist.capacitor net "C2" "vc" "0" c2;
  let ac = linearised net in
  let filter = { Repro_behave.Loop_filter.c1; c2; r1 } in
  List.iter
    (fun f ->
      let w = 2.0 *. Float.pi *. f in
      let z = Repro_behave.Loop_filter.impedance filter w in
      (* voltage divider: vc/vin = Z / (Z + Rs) *)
      let expected = Complex.div z (Complex.add z { re = rser; im = 0.0 }) in
      let h = S.Ac.transfer ac ~input:"Vin" ~output:"vc" f in
      if Complex.norm (Complex.sub h expected) > 1e-3 *. Complex.norm expected
      then Alcotest.failf "filter impedance mismatch at %g Hz" f)
    [ 1e5; 1e6; 1e7; 1e8; 1e9 ]

let test_common_source_gain_sign () =
  (* inverting amplifier: low-frequency phase ~ 180 degrees, |H| = gm RL *)
  let net = C.Topologies.common_source ~w:20e-6 ~l:0.5e-6 ~rload:5e3 0.48 in
  let ac = linearised net in
  let h = S.Ac.transfer ac ~input:"Vb" ~output:"out" 100.0 in
  Alcotest.(check bool) "gain above 1" true (Complex.norm h > 2.0);
  Alcotest.(check bool) "inverting" true (h.Complex.re < 0.0)

let test_bode_summary_extraction () =
  let net = C.Topologies.common_source ~w:20e-6 ~l:0.5e-6 ~rload:5e3 0.48 in
  let ac = linearised net in
  let sweep =
    S.Ac.logsweep ac ~input:"Vb" ~output:"out" ~f_start:1e3 ~f_stop:100e9
      ~points:120
  in
  let b = S.Ac.bode_summary sweep in
  Alcotest.(check bool) "positive dc gain" true (b.S.Ac.dc_gain_db > 6.0);
  (match b.S.Ac.unity_gain_freq with
  | Some f -> Alcotest.(check bool) "ugf in range" true (f > 1e8 && f < 50e9)
  | None -> Alcotest.fail "expected a unity crossing");
  (match b.S.Ac.bandwidth_3db with
  | Some f -> Alcotest.(check bool) "bandwidth below ugf" true
                (f < Option.get b.S.Ac.unity_gain_freq)
  | None -> Alcotest.fail "expected a -3 dB point");
  match b.S.Ac.phase_margin_deg with
  | Some pm -> Alcotest.(check bool) "sane phase margin" true (pm > 0.0 && pm < 120.0)
  | None -> Alcotest.fail "expected a phase margin"

let test_bode_summary_empty () =
  Alcotest.(check bool) "empty sweep rejected" true
    (try ignore (S.Ac.bode_summary [||]); false with Invalid_argument _ -> true)

let test_sweep_shapes () =
  let ac =
    linearised (C.Topologies.rc_lowpass ~r:1e3 ~c:1e-9 ~vin:(Source.Dc 0.0))
  in
  let sweep =
    S.Ac.logsweep ac ~input:"Vin" ~output:"out" ~f_start:1e2 ~f_stop:1e8
      ~points:30
  in
  Alcotest.(check int) "point count" 30 (Array.length sweep);
  (* monotone magnitude rolloff for a first-order lowpass *)
  for i = 0 to Array.length sweep - 2 do
    if sweep.(i + 1).S.Ac.magnitude_db > sweep.(i).S.Ac.magnitude_db +. 1e-9
    then Alcotest.fail "lowpass magnitude not monotone"
  done

(* ---- OTA ---- *)

let test_ota_characterise () =
  match S.Ota_measure.characterise C.Topologies.ota_default with
  | Error f -> Alcotest.failf "OTA failed: %s" (S.Ota_measure.failure_to_string f)
  | Ok p ->
    Alcotest.(check bool) "high dc gain" true (p.S.Ota_measure.dc_gain_db > 50.0);
    Alcotest.(check bool) "gbw in MHz range" true
      (p.S.Ota_measure.gbw > 1e6 && p.S.Ota_measure.gbw < 1e9);
    Alcotest.(check bool) "positive margin" true
      (p.S.Ota_measure.phase_margin_deg > 0.0);
    Alcotest.(check bool) "sub-mW power" true
      (p.S.Ota_measure.power > 0.0 && p.S.Ota_measure.power < 5e-3)

let test_ota_gbw_tracks_cc () =
  (* GBW ~ gm1/Cc: doubling Cc should roughly halve the bandwidth *)
  let get cc =
    match
      S.Ota_measure.characterise
        { C.Topologies.ota_default with C.Topologies.cc }
    with
    | Ok p -> p.S.Ota_measure.gbw
    | Error f -> Alcotest.failf "OTA: %s" (S.Ota_measure.failure_to_string f)
  in
  let g1 = get 1.5e-12 and g2 = get 3.0e-12 in
  let ratio = g1 /. g2 in
  Alcotest.(check bool)
    (Printf.sprintf "gbw ratio ~2 (got %.2f)" ratio)
    true
    (ratio > 1.5 && ratio < 2.6)

let test_ota_power_tracks_ibias () =
  let get ibias =
    match
      S.Ota_measure.characterise
        { C.Topologies.ota_default with C.Topologies.ibias }
    with
    | Ok p -> p.S.Ota_measure.power
    | Error f -> Alcotest.failf "OTA: %s" (S.Ota_measure.failure_to_string f)
  in
  Alcotest.(check bool) "more bias, more power" true (get 100e-6 > get 25e-6)

let test_ota_vector_roundtrip () =
  let p = C.Topologies.ota_default in
  let v = C.Topologies.ota_vector_of_params p in
  Alcotest.(check int) "6 designables" 6 (Array.length v);
  Alcotest.(check bool) "roundtrip" true
    (C.Topologies.ota_params_of_vector v = p);
  Alcotest.(check bool) "wrong arity rejected" true
    (try ignore (C.Topologies.ota_params_of_vector [| 1.0 |]); false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "RC transfer exact" `Quick test_rc_transfer_exact;
    Alcotest.test_case "RC -3dB and phase" `Quick test_rc_3db_and_phase;
    Alcotest.test_case "flat divider" `Quick test_divider_flat;
    Alcotest.test_case "loop filter vs behavioural" `Quick test_loop_filter_matches_behave;
    Alcotest.test_case "CS amp gain sign" `Quick test_common_source_gain_sign;
    Alcotest.test_case "bode summary" `Quick test_bode_summary_extraction;
    Alcotest.test_case "bode empty" `Quick test_bode_summary_empty;
    Alcotest.test_case "sweep shape" `Quick test_sweep_shapes;
    Alcotest.test_case "OTA characterise" `Quick test_ota_characterise;
    Alcotest.test_case "OTA gbw vs Cc" `Quick test_ota_gbw_tracks_cc;
    Alcotest.test_case "OTA power vs ibias" `Quick test_ota_power_tracks_ibias;
    Alcotest.test_case "OTA vector roundtrip" `Quick test_ota_vector_roundtrip;
  ]
