type t = {
  n : int;
  row_ptr : int array; (* length n + 1 *)
  col_idx : int array; (* length nnz, ascending within each row *)
  values : float array; (* length nnz, mutable *)
  fingerprint : int; (* structural hash, computed once at build *)
}

(* FNV-1a folded to OCaml's 63-bit int range; structural only, values
   never participate *)
let fnv_prime = 0x100000001b3

let fingerprint_of ~n ~row_ptr ~col_idx =
  let h = ref 0x3bf29ce484222325 (* FNV offset basis folded to 62 bits *) in
  let mix v = h := (!h lxor v) * fnv_prime land max_int in
  mix n;
  Array.iter mix row_ptr;
  Array.iter mix col_idx;
  !h

module Builder = struct
  (* per-row association from column to accumulated value; rows are
     tiny for MNA systems so a plain Hashtbl per row is cheap and keeps
     duplicate stamps O(1) *)
  type b = { bn : int; rows : (int, float ref) Hashtbl.t array }

  let create ~n =
    if n < 0 then invalid_arg "Sparse.Builder.create: negative size";
    { bn = n; rows = Array.init n (fun _ -> Hashtbl.create 8) }

  let add b i j v =
    if i < 0 || i >= b.bn || j < 0 || j >= b.bn then
      invalid_arg
        (Printf.sprintf "Sparse.Builder.add: index (%d,%d) outside %dx%d" i j
           b.bn b.bn);
    match Hashtbl.find_opt b.rows.(i) j with
    | Some r -> r := !r +. v
    | None -> Hashtbl.add b.rows.(i) j (ref v)

  let build b =
    let n = b.bn in
    let row_ptr = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      row_ptr.(i + 1) <- row_ptr.(i) + Hashtbl.length b.rows.(i)
    done;
    let nnz = row_ptr.(n) in
    let col_idx = Array.make nnz 0 in
    let values = Array.make nnz 0.0 in
    for i = 0 to n - 1 do
      let cols =
        List.sort compare
          (Hashtbl.fold (fun j _ acc -> j :: acc) b.rows.(i) [])
      in
      List.iteri
        (fun k j ->
          let p = row_ptr.(i) + k in
          col_idx.(p) <- j;
          values.(p) <- !(Hashtbl.find b.rows.(i) j))
        cols
    done;
    { n; row_ptr; col_idx; values; fingerprint = fingerprint_of ~n ~row_ptr ~col_idx }
end

let n t = t.n
let nnz t = t.row_ptr.(t.n)
let values t = t.values
let row_ptr t = t.row_ptr
let col_idx t = t.col_idx
let fingerprint t = t.fingerprint
let clear_values t = Array.fill t.values 0 (Array.length t.values) 0.0
let like t = { t with values = Array.make (Array.length t.values) 0.0 }

let index t i j =
  if i < 0 || i >= t.n || j < 0 || j >= t.n then -1
  else begin
    let lo = ref t.row_ptr.(i) and hi = ref (t.row_ptr.(i + 1) - 1) in
    let found = ref (-1) in
    while !found < 0 && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let c = t.col_idx.(mid) in
      if c = j then found := mid
      else if c < j then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  end

let get t i j =
  match index t i j with
  | -1 -> 0.0
  | p -> t.values.(p)

let same_pattern a b =
  a.n = b.n
  && (a.row_ptr == b.row_ptr || a.row_ptr = b.row_ptr)
  && (a.col_idx == b.col_idx || a.col_idx = b.col_idx)

let mul_vec t v =
  if Array.length v <> t.n then invalid_arg "Sparse.mul_vec: size mismatch";
  Array.init t.n (fun i ->
      let acc = ref 0.0 in
      for p = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        acc := !acc +. (t.values.(p) *. v.(t.col_idx.(p)))
      done;
      !acc)

let of_matrix ?(keep_zeros = false) m =
  let nn = Matrix.rows m in
  if Matrix.cols m <> nn then invalid_arg "Sparse.of_matrix: matrix not square";
  let b = Builder.create ~n:nn in
  for i = 0 to nn - 1 do
    for j = 0 to nn - 1 do
      let v = Matrix.get m i j in
      if keep_zeros || v <> 0.0 then Builder.add b i j v
    done
  done;
  Builder.build b

let to_matrix t =
  let m = Matrix.create t.n t.n in
  for i = 0 to t.n - 1 do
    for p = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Matrix.set m i t.col_idx.(p) t.values.(p)
    done
  done;
  m
